//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace must build and test **fully offline**, so the real
//! crates.io `criterion` (and its large dependency tree) cannot be
//! resolved. This shim implements the subset of the API the
//! repository's benches use — [`criterion_group!`], [`criterion_main!`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `throughput` / `bench_with_input` / `finish`,
//! [`BenchmarkId::from_parameter`], and [`Bencher::iter`] — and times
//! each benchmark with [`std::time::Instant`].
//!
//! It reports median and min/max wall-clock per iteration (plus
//! element throughput when declared). There is no statistical
//! bootstrap, plotting, or baseline comparison: the benches exist to
//! give order-of-magnitude numbers and to keep hot paths compiling and
//! exercised, not to detect 1% regressions.
//!
//! Iteration counts honour the `CRITERION_QUICK` environment variable
//! (any value → one sample per benchmark), which CI uses to smoke-test
//! benches cheaply.

use std::time::{Duration, Instant};

/// Per-iteration timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one wall-clock sample over
    /// `iters_per_sample` back-to-back iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

/// Throughput declaration for a benchmark, used to derive rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for one parameterised benchmark case.
///
/// # Example
///
/// ```
/// use criterion::BenchmarkId;
///
/// assert_eq!(BenchmarkId::from_parameter(42).id, "42");
/// assert_eq!(BenchmarkId::new("fit", 3).id, "fit/3");
/// ```
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    /// Rendered identifier shown in output.
    pub id: String,
}

impl BenchmarkId {
    /// An id rendered from the parameter value alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id rendered as `function/parameter`.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, default_sample_size(), None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: default_sample_size(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(
            &label,
            effective_sample_size(self.sample_size),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (output separator only in this shim).
    pub fn finish(&mut self) {
        println!();
    }
}

fn default_sample_size() -> usize {
    effective_sample_size(10)
}

fn effective_sample_size(configured: usize) -> usize {
    if std::env::var_os("CRITERION_QUICK").is_some() {
        1
    } else {
        configured.max(1)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    for _ in 0..samples {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("bench {label:<40} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = bencher.samples[bencher.samples.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {label:<40} median {median:>12?}  (min {min:?}, max {max:?}){rate}");
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 3,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 3);
        assert_eq!(b.samples.len(), 1);
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::from_parameter("abc").id, "abc");
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.throughput(Throughput::Elements(10));
            g.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, &x| {
                b.iter(|| ran += x);
            });
            g.finish();
        }
        // 2 samples × 1 iteration each.
        assert_eq!(ran, 2);
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut hits = 0u32;
        c.bench_function("direct", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }

    criterion_group!(example_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macro_generated_group_is_callable() {
        example_group();
    }
}
