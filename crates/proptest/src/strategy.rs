//! Value-generation strategies.
//!
//! A [`Strategy`] produces one value per call from the shim's
//! deterministic RNG. Ranges over the primitive numeric types, tuples
//! of strategies, and `Vec<Strategy>` (via [`crate::collection::vec`])
//! cover every argument form the workspace's property tests use.

use std::ops::{Range, RangeInclusive};

use crate::rng::ShimRng;

/// Generates values of `Self::Value` from the shim RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut ShimRng) -> Self::Value;
}

/// A strategy that always yields the same value.
///
/// # Example
///
/// ```
/// use proptest::{Just, Strategy};
/// use proptest::rng::ShimRng;
///
/// let mut rng = ShimRng::new(1);
/// assert_eq!(Just(42).generate(&mut rng), 42);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut ShimRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ShimRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ShimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_uint_range!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ShimRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ShimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ShimRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.f64() as $t;
                let x = self.start + u * (self.end - self.start);
                // Floating rounding could land exactly on `end`; fold it
                // back inside so the half-open contract holds.
                if x >= self.end { self.start } else { x }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ShimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

macro_rules! impl_tuple {
    ($(($($s:ident / $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut ShimRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple!(
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3)
);

/// Types usable as bare `name: Type` proptest arguments.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value of `Self`.
    fn arbitrary(rng: &mut ShimRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut ShimRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut ShimRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_range_bounds() {
        let mut rng = ShimRng::new(3);
        for _ in 0..500 {
            let x = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&x));
            let y = (0usize..=5).generate(&mut rng);
            assert!(y <= 5);
        }
    }

    #[test]
    fn signed_range_bounds() {
        let mut rng = ShimRng::new(5);
        for _ in 0..500 {
            let x = (-100i64..100).generate(&mut rng);
            assert!((-100..100).contains(&x));
        }
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = ShimRng::new(9);
        for _ in 0..500 {
            let x = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn full_u64_range_is_accepted() {
        let mut rng = ShimRng::new(13);
        // span + 1 would overflow; exercises the u64::MAX special case.
        let _ = (0u64..=u64::MAX).generate(&mut rng);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = ShimRng::new(17);
        let (a, b, c) = (0u8..4, 10u16..12, 0.0f32..1.0).generate(&mut rng);
        assert!(a < 4);
        assert!((10..12).contains(&b));
        assert!((0.0..1.0).contains(&c));
    }

    #[test]
    #[should_panic(expected = "empty range strategy")]
    fn empty_range_panics() {
        let mut rng = ShimRng::new(1);
        let _ = (5u32..5).generate(&mut rng);
    }
}
