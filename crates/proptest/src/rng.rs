//! Deterministic random source for the proptest shim.
//!
//! SplitMix64 seeded from an FNV-1a hash of the test's fully-qualified
//! name: every test gets its own stream, and the stream is identical on
//! every run and machine.

/// SplitMix64 generator (Steele, Lea, Flood 2014). Small state, passes
/// BigCrush, and — crucially for the shim — trivially reproducible.
#[derive(Debug, Clone)]
pub struct ShimRng {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl ShimRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        ShimRng { state: seed }
    }

    /// Creates a generator whose stream is a pure function of the
    /// test's fully-qualified name.
    ///
    /// # Example
    ///
    /// ```
    /// use proptest::rng::ShimRng;
    ///
    /// let mut a = ShimRng::for_test("my::test");
    /// let mut b = ShimRng::for_test("my::test");
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    pub fn for_test(name: &str) -> Self {
        let mut hash = FNV_OFFSET;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        ShimRng::new(hash)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// (debiased by rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let hi = ((x as u128 * bound as u128) >> 64) as u64;
            let lo = x.wrapping_mul(bound);
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_stays_in_bound() {
        let mut rng = ShimRng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = ShimRng::new(11);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        ShimRng::new(1).below(0);
    }

    #[test]
    fn streams_differ_by_name() {
        let mut a = ShimRng::for_test("a");
        let mut b = ShimRng::for_test("b");
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
