//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace must build and test **fully offline** (the tier-1
//! verify runs in air-gapped containers), so the real crates.io
//! `proptest` cannot be resolved. This shim implements exactly the API
//! surface the repository's property tests use:
//!
//! * the [`proptest!`] macro (multiple `#[test]` functions per block,
//!   optional `#![proptest_config(...)]` header),
//! * argument strategies: integer and float [`Range`]s /
//!   [`RangeInclusive`]s, tuples of strategies, and
//!   [`collection::vec`],
//! * `name: Type` arguments via [`Arbitrary`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * [`ProptestConfig::with_cases`] and the `PROPTEST_CASES`
//!   environment variable.
//!
//! Semantics deliberately differ from upstream in two ways that suit
//! this repository's determinism-first ethos:
//!
//! 1. **Deterministic seeding.** Case inputs derive from a hash of the
//!    test's module path and name, so every run (and every CI machine)
//!    explores the same inputs. There is no persistence file.
//! 2. **No shrinking.** On failure the shim reports the exact inputs of
//!    the failing case and re-raises the panic; inputs are already
//!    small because strategies here are bounded ranges.
//!
//! [`Range`]: std::ops::Range
//! [`RangeInclusive`]: std::ops::RangeInclusive

pub mod collection;
pub mod rng;
pub mod strategy;

pub use strategy::{Arbitrary, Just, Strategy};

/// Runtime configuration of a `proptest!` block.
///
/// # Example
///
/// ```
/// use proptest::ProptestConfig;
///
/// assert_eq!(ProptestConfig::with_cases(8).cases, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Default number of cases when neither the block nor the
    /// environment overrides it.
    pub const DEFAULT_CASES: u32 = 64;

    /// Creates a configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count, honouring a `PROPTEST_CASES` environment
    /// override (ignored when unparsable).
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: Self::DEFAULT_CASES,
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests.
///
/// # Example
///
/// ```ignore
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// (The generated functions carry `#[test]`, so they only exist — and
/// run — under `cargo test`.)
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident ( $($args:tt)* ) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = __config.resolved_cases();
            let mut __rng = $crate::rng::ShimRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cases {
                $crate::__proptest_case! { __rng, __case, ($($args)*) $body }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    ($rng:ident, $case:ident, ($($args:tt)*) $body:block) => {{
        let mut __inputs = ::std::string::String::new();
        $crate::__proptest_bind! { $rng, __inputs @ $($args)* }
        let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
        if let ::std::result::Result::Err(__err) = __outcome {
            eprintln!(
                "proptest case {} failed with inputs: {}",
                $case,
                __inputs.trim_end_matches(", ")
            );
            ::std::panic::resume_unwind(__err);
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $inputs:ident @ ) => {};
    ($rng:ident, $inputs:ident @ $x:ident in $s:expr) => {
        $crate::__proptest_bind! { $rng, $inputs @ $x in $s, }
    };
    ($rng:ident, $inputs:ident @ $x:ident in $s:expr, $($rest:tt)*) => {
        let $x = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $inputs.push_str(&format!("{} = {:?}, ", stringify!($x), &$x));
        $crate::__proptest_bind! { $rng, $inputs @ $($rest)* }
    };
    ($rng:ident, $inputs:ident @ $x:ident : $t:ty) => {
        $crate::__proptest_bind! { $rng, $inputs @ $x : $t, }
    };
    ($rng:ident, $inputs:ident @ $x:ident : $t:ty, $($rest:tt)*) => {
        let $x = <$t as $crate::strategy::Arbitrary>::arbitrary(&mut $rng);
        $inputs.push_str(&format!("{} = {:?}, ", stringify!($x), &$x));
        $crate::__proptest_bind! { $rng, $inputs @ $($rest)* }
    };
}

/// Asserts a condition inside a property, with an optional format
/// message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::rng::ShimRng;

    #[test]
    fn config_default_and_override() {
        assert_eq!(
            ProptestConfig::default().cases,
            ProptestConfig::DEFAULT_CASES
        );
        assert_eq!(ProptestConfig::with_cases(3).cases, 3);
    }

    #[test]
    fn deterministic_per_test_stream() {
        let mut a = ShimRng::for_test("mod::t");
        let mut b = ShimRng::for_test("mod::t");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ShimRng::for_test("mod::other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in -3i32..4, z in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..4).contains(&y));
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn vec_respects_size_and_element_bounds(
            xs in crate::collection::vec(1u32..7, 2..5),
        ) {
            prop_assert!((2..5).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| (1..7).contains(&x)));
        }

        #[test]
        fn tuple_strategies_compose(
            ts in crate::collection::vec((1.0f64..2.0, 0u8..3), 1..4),
        ) {
            for (a, b) in ts {
                prop_assert!((1.0..2.0).contains(&a));
                prop_assert!(b < 3);
            }
        }

        #[test]
        fn arbitrary_type_args_bind(seed: u64, flag: bool) {
            // Touch the values; any u64/bool is acceptable.
            let _ = seed.wrapping_add(flag as u64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn config_header_applies(x in 0u8..200) {
            prop_assert!(x < 200);
        }
    }

    #[test]
    fn generated_tests_actually_run() {
        // The proptest!-generated functions above are themselves #[test]
        // items; calling one directly must also work.
        ranges_stay_in_bounds();
    }
}
