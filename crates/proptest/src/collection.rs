//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::rng::ShimRng;
use crate::strategy::Strategy;

/// Length specification for [`vec`]: a fixed size or a range of sizes,
/// mirroring proptest's `SizeRange` conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut ShimRng) -> usize {
        (self.lo..=self.hi_inclusive).generate(rng)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with a length drawn from `size` and elements
/// drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut ShimRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a [`VecStrategy`], mirroring `proptest::collection::vec`.
///
/// # Example
///
/// ```
/// use proptest::collection::vec;
/// use proptest::rng::ShimRng;
/// use proptest::Strategy;
///
/// let mut rng = ShimRng::new(1);
/// let xs = vec(0u32..10, 3..6).generate(&mut rng);
/// assert!((3..6).contains(&xs.len()));
/// assert!(xs.iter().all(|&x| x < 10));
/// assert_eq!(vec(0u32..10, 4).generate(&mut rng).len(), 4);
/// ```
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_cover_the_size_range() {
        let mut rng = ShimRng::new(21);
        let strat = vec(0u8..2, 0..4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng).len()] = true;
        }
        assert!(seen.iter().all(|&s| s), "lengths seen: {seen:?}");
    }

    #[test]
    fn fixed_size_is_exact() {
        let mut rng = ShimRng::new(22);
        for _ in 0..50 {
            assert_eq!(vec(0u32..100, 9).generate(&mut rng).len(), 9);
        }
    }

    #[test]
    #[should_panic(expected = "empty size range")]
    fn empty_size_range_panics() {
        let _ = vec(0u8..2, 3..3);
    }
}
