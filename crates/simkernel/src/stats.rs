//! Online statistics for simulation measurement.
//!
//! The RAC agent is non-intrusive: the only signal it consumes is
//! application-level performance sampled over an interval. These
//! accumulators compute those samples without storing raw observations.

use crate::time::{SimDuration, SimTime};

/// Numerically stable running mean / variance (Welford's algorithm).
///
/// # Example
///
/// ```
/// use simkernel::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 6.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 4.0);
/// assert_eq!(w.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n − 1 denominator), or `0.0` with fewer than two
    /// observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Histogram of durations with exponentially growing bucket widths,
/// supporting approximate percentile queries.
///
/// Buckets cover `[0, ~4.7 simulated hours)` with ≤ ~4% relative error —
/// plenty for response-time distributions.
///
/// # Example
///
/// ```
/// use simkernel::SimDuration;
/// use simkernel::stats::DurationHistogram;
///
/// let mut h = DurationHistogram::new();
/// for ms in [10u64, 20, 30, 40, 1000] {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 5);
/// let p50 = h.percentile(50.0).unwrap();
/// assert!(p50 >= SimDuration::from_millis(20) && p50 <= SimDuration::from_millis(40));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurationHistogram {
    /// Sub-bucket resolution: 32 linear sub-buckets per power of two.
    counts: Vec<u64>,
    total: u64,
    sum_micros: u128,
}

const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = 5;
// 64 - 5 = enough exponents to cover u64, but cap the layout for memory.
const MAX_EXPONENT: u32 = 39; // covers up to 2^(39+5) us ≈ 4.7e8 s

impl DurationHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        DurationHistogram {
            counts: vec![0; ((MAX_EXPONENT + 1) as usize) * SUB_BUCKETS as usize],
            total: 0,
            sum_micros: 0,
        }
    }

    fn index_of(us: u64) -> usize {
        if us < SUB_BUCKETS {
            return us as usize;
        }
        let exp = 63 - us.leading_zeros(); // position of the highest set bit
        let exp = exp.min(MAX_EXPONENT + SUB_BITS - 1);
        let bucket_exp = exp - SUB_BITS + 1;
        // Shift so the value lands in [SUB_BUCKETS, 2*SUB_BUCKETS); the
        // masked low bits are then the linear sub-bucket, and
        // `lower_bound_of` round-trips it exactly via
        // `(SUB_BUCKETS + sub) << (bucket_exp - 1)`.
        let sub = (us >> (bucket_exp - 1)) & (SUB_BUCKETS - 1);
        ((bucket_exp as usize) * SUB_BUCKETS as usize + sub as usize)
            .min(((MAX_EXPONENT + 1) as usize) * SUB_BUCKETS as usize - 1)
    }

    fn lower_bound_of(index: usize) -> u64 {
        let bucket_exp = index / SUB_BUCKETS as usize;
        let sub = (index % SUB_BUCKETS as usize) as u64;
        if bucket_exp == 0 {
            sub
        } else {
            (SUB_BUCKETS + sub) << (bucket_exp - 1)
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let us = d.as_micros();
        self.counts[Self::index_of(us)] += 1;
        self.total += 1;
        self.sum_micros += us as u128;
    }

    /// Records every duration in `ds` at once.
    ///
    /// Exactly equivalent to calling [`record`](Self::record) per
    /// element — the accumulators are integers, so batching the
    /// total/sum write-back cannot change any count, percentile, or
    /// bucket edge — but the struct fields are touched once per batch
    /// instead of once per observation, which is what lets per-event
    /// histogram updates amortize over an interval's worth of samples.
    pub fn record_batch<I>(&mut self, ds: I)
    where
        I: IntoIterator<Item = SimDuration>,
    {
        let mut total = 0u64;
        let mut sum = 0u128;
        for d in ds {
            let us = d.as_micros();
            self.counts[Self::index_of(us)] += 1;
            total += 1;
            sum += us as u128;
        }
        self.total += total;
        self.sum_micros += sum;
    }

    /// Records `n` copies of the same duration in O(1).
    ///
    /// Exactly equivalent to calling [`record`](Self::record) `n`
    /// times: one bucket increment by `n`, integer total/sum bumps.
    pub fn record_n(&mut self, d: SimDuration, n: u64) {
        if n == 0 {
            return;
        }
        let us = d.as_micros();
        self.counts[Self::index_of(us)] += n;
        self.total += n;
        self.sum_micros += us as u128 * n as u128;
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of all recorded durations, or `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        (self.total > 0)
            .then(|| SimDuration::from_micros((self.sum_micros / self.total as u128) as u64))
    }

    /// Approximate percentile (`p` in `[0, 100]`), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<SimDuration> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0;
        for (i, c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Some(SimDuration::from_micros(Self::lower_bound_of(i)));
            }
        }
        Some(SimDuration::from_micros(Self::lower_bound_of(
            self.counts.len() - 1,
        )))
    }

    /// Resets the histogram to empty without deallocating.
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
        self.sum_micros = 0;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &DurationHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_micros += other.sum_micros;
    }
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. "mean number
/// of busy Apache workers over the interval".
///
/// # Example
///
/// ```
/// use simkernel::SimTime;
/// use simkernel::stats::TimeWeighted;
///
/// let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
/// tw.set(SimTime::from_secs(10), 4.0);  // 0.0 held for 10 s
/// tw.set(SimTime::from_secs(30), 0.0);  // 4.0 held for 20 s
/// let avg = tw.average(SimTime::from_secs(40)); // 4*20/40
/// assert!((avg - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    last_change: SimTime,
    value: f64,
    weighted_sum: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts tracking a signal whose value is `initial` at time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_change: start,
            value: initial,
            weighted_sum: 0.0,
            start,
        }
    }

    /// Updates the signal value at time `now`.
    pub fn set(&mut self, now: SimTime, value: f64) {
        let dt = now.saturating_since(self.last_change).as_secs_f64();
        self.weighted_sum += self.value * dt;
        self.last_change = now;
        self.value = value;
    }

    /// Adds `delta` to the current value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current (instantaneous) value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Time-weighted average over `[start, now]`; `0.0` for an empty span.
    pub fn average(&self, now: SimTime) -> f64 {
        let span = now.saturating_since(self.start).as_secs_f64();
        if span <= 0.0 {
            return self.value;
        }
        let pending = self.value * now.saturating_since(self.last_change).as_secs_f64();
        (self.weighted_sum + pending) / span
    }

    /// Restarts the averaging window at `now`, keeping the current value.
    pub fn reset(&mut self, now: SimTime) {
        self.weighted_sum = 0.0;
        self.start = now;
        self.last_change = now;
    }
}

/// Fixed-capacity sliding window over the most recent observations.
///
/// Used by the RAC agent's context-change detector, which compares the
/// current reward to the average of the last *n* rewards.
///
/// # Example
///
/// ```
/// use simkernel::stats::SlidingWindow;
///
/// let mut w = SlidingWindow::new(3);
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.mean(), Some(3.0)); // 2, 3, 4
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingWindow {
    buf: Vec<f64>,
    head: usize,
    len: usize,
}

impl SlidingWindow {
    /// Creates a window keeping the `capacity` most recent values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            buf: vec![0.0; capacity],
            head: 0,
            len: 0,
        }
    }

    /// Maximum number of retained values.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Number of currently retained values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no values have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` once the window has wrapped at least once.
    pub fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// Pushes a value, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        self.buf[self.head] = x;
        self.head = (self.head + 1) % self.buf.len();
        self.len = (self.len + 1).min(self.buf.len());
    }

    /// Mean of the retained values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        Some(self.iter().sum::<f64>() / self.len as f64)
    }

    /// Median of the retained values, or `None` when empty. For an even
    /// count the two middle values are averaged. NaN-safe via total
    /// ordering (NaNs sort last).
    pub fn median(&self) -> Option<f64> {
        if self.len == 0 {
            return None;
        }
        let mut values: Vec<f64> = self.iter().collect();
        values.sort_by(f64::total_cmp);
        let mid = values.len() / 2;
        Some(if values.len() % 2 == 1 {
            values[mid]
        } else {
            (values[mid - 1] + values[mid]) / 2.0
        })
    }

    /// Iterates over retained values, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        let cap = self.buf.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).map(move |i| self.buf[(start + i) % cap])
    }

    /// Clears the window.
    pub fn clear(&mut self) {
        self.len = 0;
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_mean_and_variance() {
        let mut w = Welford::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), Some(2.0));
        assert_eq!(w.max(), Some(9.0));
    }

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), None);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = DurationHistogram::new();
        for ms in [100u64, 200, 300] {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.mean(), Some(SimDuration::from_millis(200)));
    }

    #[test]
    fn histogram_percentiles_ordered() {
        let mut h = DurationHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_millis(i));
        }
        let p50 = h.percentile(50.0).unwrap();
        let p95 = h.percentile(95.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        // ≤ ~4% relative bucket error
        let p50_ms = p50.as_millis_f64();
        assert!((470.0..=510.0).contains(&p50_ms), "p50 {p50_ms}");
    }

    #[test]
    fn histogram_empty_percentile_none() {
        let h = DurationHistogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn histogram_clear_and_merge() {
        let mut a = DurationHistogram::new();
        let mut b = DurationHistogram::new();
        a.record(SimDuration::from_millis(10));
        b.record(SimDuration::from_millis(20));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        a.clear();
        assert_eq!(a.count(), 0);
    }

    #[test]
    fn histogram_handles_extreme_values() {
        let mut h = DurationHistogram::new();
        h.record(SimDuration::ZERO);
        h.record(SimDuration::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0).is_some());
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 2.0);
        tw.set(SimTime::from_secs(5), 4.0);
        // 2.0 for 5 s, 4.0 for 5 s → 3.0
        assert!((tw.average(SimTime::from_secs(10)) - 3.0).abs() < 1e-9);
        assert_eq!(tw.current(), 4.0);
    }

    #[test]
    fn time_weighted_add_and_reset() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.add(SimTime::from_secs(1), 1.0);
        assert_eq!(tw.current(), 2.0);
        tw.reset(SimTime::from_secs(1));
        assert!((tw.average(SimTime::from_secs(2)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let mut w = SlidingWindow::new(2);
        w.push(1.0);
        w.push(2.0);
        w.push(3.0);
        let vals: Vec<f64> = w.iter().collect();
        assert_eq!(vals, vec![2.0, 3.0]);
        assert!(w.is_full());
    }

    #[test]
    fn sliding_window_mean_empty() {
        let w = SlidingWindow::new(4);
        assert_eq!(w.mean(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn sliding_window_median() {
        let mut w = SlidingWindow::new(5);
        assert_eq!(w.median(), None);
        w.push(5.0);
        assert_eq!(w.median(), Some(5.0));
        w.push(1.0);
        assert_eq!(w.median(), Some(3.0)); // even count: average of middle two
        w.push(9.0);
        assert_eq!(w.median(), Some(5.0)); // odd count, unsorted input
                                           // Eviction changes the population the median is over.
        for x in [2.0, 2.0, 2.0, 2.0] {
            w.push(x);
        }
        assert_eq!(w.median(), Some(2.0));
    }

    proptest! {
        #[test]
        fn prop_welford_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut w = Welford::new();
            for &x in &xs {
                w.push(x);
            }
            let naive_mean = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((w.mean() - naive_mean).abs() < 1e-6 * (1.0 + naive_mean.abs()));
        }

        /// Satellite property: the batched recording path is *exactly*
        /// the one-at-a-time path — identical bucket counts (so every
        /// bucket edge), identical totals, identical exact sum, and
        /// therefore identical percentile answers at any rank. The
        /// struct derives `Eq`, so one comparison covers all of it.
        #[test]
        fn prop_histogram_batch_equals_one_at_a_time(
            us in proptest::collection::vec(0u64..u64::MAX, 1..200),
            split in 0usize..200,
        ) {
            let ds: Vec<SimDuration> = us.iter().map(|&u| SimDuration::from_micros(u)).collect();
            let mut one = DurationHistogram::new();
            for &d in &ds {
                one.record(d);
            }
            // Two batches (possibly empty), exercising the carry-over of
            // partially accumulated state between batch calls.
            let split = split.min(ds.len());
            let mut batched = DurationHistogram::new();
            batched.record_batch(ds[..split].iter().copied());
            batched.record_batch(ds[split..].iter().copied());
            prop_assert_eq!(&one, &batched);
            for p in [0.0, 1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0] {
                prop_assert_eq!(one.percentile(p), batched.percentile(p));
            }
            prop_assert_eq!(one.mean(), batched.mean());
            prop_assert_eq!(one.count(), batched.count());
        }

        /// `record_n` is exactly n repeated `record`s.
        #[test]
        fn prop_histogram_record_n_equals_repeats(u in 0u64..u64::MAX, n in 0u64..500) {
            let d = SimDuration::from_micros(u);
            let mut repeats = DurationHistogram::new();
            for _ in 0..n {
                repeats.record(d);
            }
            let mut bulk = DurationHistogram::new();
            bulk.record_n(d, n);
            prop_assert_eq!(repeats, bulk);
        }

        #[test]
        fn prop_histogram_percentile_monotone(us in proptest::collection::vec(0u64..10_000_000, 1..100)) {
            let mut h = DurationHistogram::new();
            for &u in &us {
                h.record(SimDuration::from_micros(u));
            }
            let mut last = SimDuration::ZERO;
            for p in [1.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
                let v = h.percentile(p).unwrap();
                prop_assert!(v >= last);
                last = v;
            }
        }

        #[test]
        fn prop_sliding_window_len_bounded(cap in 1usize..32, n in 0usize..100) {
            let mut w = SlidingWindow::new(cap);
            for i in 0..n {
                w.push(i as f64);
            }
            prop_assert_eq!(w.len(), n.min(cap));
            prop_assert_eq!(w.iter().count(), n.min(cap));
        }
    }
}
