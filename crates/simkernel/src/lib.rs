//! Deterministic discrete-event simulation kernel.
//!
//! `simkernel` is the foundation of the RAC reproduction: every simulated
//! subsystem (the three-tier web system, the virtual machine stack, the
//! TPC-W workload generator) is driven by the primitives in this crate.
//!
//! It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a microsecond-resolution simulated
//!   clock with total ordering and saturating arithmetic.
//! * [`EventQueue`] — a calendar-queue future-event list with
//!   deterministic FIFO tie-breaking for events scheduled at the same
//!   instant, which makes whole-simulation runs reproducible. The
//!   original binary-heap implementation survives as
//!   [`event::HeapQueue`], the differential-testing oracle and
//!   `figures bench` baseline.
//! * [`Pcg64`] — a small, fast, seedable PRNG (PCG XSH-RR variant) plus the
//!   distributions simulation code needs ([`rng::Exponential`],
//!   [`rng::Zipf`], …). Using an in-tree generator keeps results
//!   bit-for-bit stable across dependency upgrades.
//! * [`stats`] — online statistics: Welford mean/variance, fixed-layout
//!   histograms with percentile queries, sliding windows and time-weighted
//!   averages.
//!
//! # Example
//!
//! Simulate a tiny M/M/1 queue for one simulated minute:
//!
//! ```
//! use simkernel::{EventQueue, Pcg64, SimDuration, SimTime};
//! use simkernel::rng::Exponential;
//! use simkernel::stats::Welford;
//!
//! #[derive(Debug, Clone, Copy, PartialEq, Eq)]
//! enum Ev { Arrival, Departure }
//!
//! let mut q = EventQueue::new();
//! let mut rng = Pcg64::seed_from_u64(7);
//! let arrivals = Exponential::new(0.01); // one arrival per 100 us on average
//! let service = Exponential::new(0.02);
//!
//! q.schedule(SimTime::ZERO, Ev::Arrival);
//! let mut in_system = 0u32;
//! let mut seen = Welford::new();
//! while let Some((now, ev)) = q.pop_before(SimTime::from_secs(60)) {
//!     match ev {
//!         Ev::Arrival => {
//!             in_system += 1;
//!             seen.push(in_system as f64);
//!             q.schedule(now + SimDuration::from_micros(arrivals.sample_micros(&mut rng)), Ev::Arrival);
//!             if in_system == 1 {
//!                 q.schedule(now + SimDuration::from_micros(service.sample_micros(&mut rng)), Ev::Departure);
//!             }
//!         }
//!         Ev::Departure => {
//!             in_system -= 1;
//!             if in_system > 0 {
//!                 q.schedule(now + SimDuration::from_micros(service.sample_micros(&mut rng)), Ev::Departure);
//!             }
//!         }
//!     }
//! }
//! assert!(seen.mean() > 0.0);
//! ```

pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventQueue, HeapQueue};
pub use rng::Pcg64;
pub use time::{SimDuration, SimTime};
