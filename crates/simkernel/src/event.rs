//! Timestamped event queue with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A future-event list: the central data structure of a discrete-event
/// simulation.
///
/// Events are popped in non-decreasing timestamp order. Events scheduled
/// for the *same* instant are popped in the order they were scheduled
/// (FIFO), which keeps simulations deterministic without requiring the
/// event payload itself to be ordered.
///
/// # Example
///
/// ```
/// use simkernel::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "second");
/// q.schedule(SimTime::from_secs(1), "first");
/// q.schedule(SimTime::from_secs(2), "third"); // same time: FIFO after "second"
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "third")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to get earliest-first, with the
        // sequence number breaking ties FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The timestamp of the most recently popped event — the current
    /// simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a simulation bug; in debug builds this
    /// panics, in release builds the event fires at the current time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is earlier than [`EventQueue::now`].
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Pops the earliest event only if it is strictly before `horizon`.
    ///
    /// Events at or after the horizon stay queued, so a simulation can be
    /// resumed past the horizon later. The clock does not advance when
    /// `None` is returned.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? < horizon {
            self.pop()
        } else {
            None
        }
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(1), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn pop_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(3), "b");
        assert_eq!(
            q.pop_before(SimTime::from_secs(2)),
            Some((SimTime::from_secs(1), "a"))
        );
        assert_eq!(q.pop_before(SimTime::from_secs(2)), None);
        assert_eq!(q.len(), 1);
        // Resume with a later horizon.
        assert_eq!(
            q.pop_before(SimTime::from_secs(4)),
            Some((SimTime::from_secs(3), "b"))
        );
    }

    #[test]
    fn pop_before_exact_horizon_is_exclusive() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.pop_before(SimTime::from_secs(2)), None);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    proptest! {
        /// Popped timestamps are always non-decreasing regardless of the
        /// scheduling order.
        #[test]
        fn prop_pop_order_is_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((at, _)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
            }
        }

        /// Every scheduled event is eventually popped exactly once.
        #[test]
        fn prop_no_event_lost(times in proptest::collection::vec(0u64..1_000, 1..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(*t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }
    }
}
