//! Timestamped event queues with deterministic tie-breaking.
//!
//! Two implementations share one contract ("pop in non-decreasing
//! `(timestamp, schedule-order)` order"):
//!
//! * [`EventQueue`] — a calendar queue (Brown 1988): events hash into
//!   time-sliced buckets, each held in sorted order, so both insert and
//!   pop are O(1) amortized once the bucket width has adapted to the
//!   event spacing. This is the production future-event list.
//! * [`HeapQueue`] — the original `BinaryHeap` future-event list, kept
//!   as the differential-testing oracle and the `figures bench`
//!   baseline the calendar queue's speedup is measured against.
//!
//! Both break same-instant ties FIFO via a monotonic sequence number, so
//! a simulation's event interleaving is a pure function of what was
//! scheduled — never of queue internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Calendar-queue future-event list: the central data structure of a
/// discrete-event simulation.
///
/// Events are popped in non-decreasing timestamp order. Events scheduled
/// for the *same* instant are popped in the order they were scheduled
/// (FIFO), which keeps simulations deterministic without requiring the
/// event payload itself to be ordered.
///
/// Internally, events hash by `timestamp / width` into a power-of-two
/// ring of buckets ("days" on a calendar), each kept sorted. Pops scan
/// forward from the current day; inserts binary-search within one
/// bucket. The bucket count doubles/halves with the queue length and the
/// width re-adapts to the observed event spacing on each resize, so both
/// operations stay O(1) amortized — unlike a binary heap's O(log n) —
/// while popping the exact same `(time, schedule-order)` sequence as
/// [`HeapQueue`].
///
/// # Example
///
/// ```
/// use simkernel::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "second");
/// q.schedule(SimTime::from_secs(1), "first");
/// q.schedule(SimTime::from_secs(2), "third"); // same time: FIFO after "second"
///
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "first")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "second")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "third")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Bucket ring; `buckets.len()` is a power of two. Each bucket is
    /// sorted *descending* by `(at, seq)` so the earliest entry is the
    /// tail and popping it is `Vec::pop`.
    buckets: Vec<Vec<Slot<E>>>,
    /// log₂ of the bucket width in microseconds: one calendar "day" is
    /// `1 << width_shift` µs. Keeping the width a power of two turns the
    /// timestamp→day mapping (run once per insert and once per scanned
    /// day on pop) into a shift instead of a 64-bit division.
    width_shift: u32,
    len: usize,
    seq: u64,
    now: SimTime,
}

#[derive(Debug, Clone)]
struct Slot<E> {
    at: u64,
    seq: u64,
    event: E,
}

/// Buckets never shrink below this; adaptation only matters at scale.
const MIN_BUCKETS: usize = 16;
/// Starting bucket width (log₂ µs ⇒ 1024 µs) before the first resize
/// re-estimates it.
const INITIAL_WIDTH_SHIFT: u32 = 10;

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width_shift: INITIAL_WIDTH_SHIFT,
            len: 0,
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The timestamp of the most recently popped event — the current
    /// simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_of(&self, at: u64) -> usize {
        ((at >> self.width_shift) & (self.buckets.len() as u64 - 1)) as usize
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a simulation bug; in debug builds this
    /// panics, in release builds the event fires at the current time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is earlier than [`EventQueue::now`].
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let us = at.as_micros();
        let b = self.bucket_of(us);
        let bucket = &mut self.buckets[b];
        // Descending by (at, seq): find the first entry that is NOT
        // greater than the new key and insert before it.
        let pos = bucket.partition_point(|s| (s.at, s.seq) > (us, seq));
        bucket.insert(pos, Slot { at: us, seq, event });
        self.len += 1;
        if self.len > self.buckets.len() * 2 {
            let n = self.buckets.len() * 2;
            self.rebuild(n);
        }
    }

    /// Finds the bucket holding the globally earliest `(at, seq)` entry
    /// (always a bucket *tail*). O(1) amortized: scans days forward from
    /// `now`, falling back to a direct tail scan after one full ring
    /// cycle (a gap longer than the whole calendar year).
    fn locate_min(&self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let shift = self.width_shift;
        let nmask = self.buckets.len() as u128 - 1;
        // Day arithmetic in u128: with a 0-µs-wide shift near
        // `SimTime::MAX`, `day0 + i` could overflow u64.
        let day0 = (self.now.as_micros() >> shift) as u128;
        for i in 0..self.buckets.len() as u128 {
            let day = day0 + i;
            let b = (day & nmask) as usize;
            if let Some(s) = self.buckets[b].last() {
                if (s.at >> shift) as u128 == day {
                    return Some(b);
                }
            }
        }
        // No event within one ring cycle of `now`: direct search over
        // bucket tails (each tail is its bucket's minimum).
        let mut best: Option<(u64, u64, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            if let Some(s) = bucket.last() {
                if best.is_none_or(|(at, seq, _)| (s.at, s.seq) < (at, seq)) {
                    best = Some((s.at, s.seq, b));
                }
            }
        }
        best.map(|(_, _, b)| b)
    }

    fn pop_from(&mut self, b: usize) -> (SimTime, E) {
        let slot = self.buckets[b].pop().expect("locate_min found a tail");
        self.len -= 1;
        self.now = SimTime::from_micros(slot.at);
        if self.len < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
            let n = (self.buckets.len() / 2).max(MIN_BUCKETS);
            self.rebuild(n);
        }
        (self.now, slot.event)
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.locate_min()
            .map(|b| SimTime::from_micros(self.buckets[b].last().expect("tail").at))
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let b = self.locate_min()?;
        Some(self.pop_from(b))
    }

    /// Pops the earliest event only if it is strictly before `horizon`.
    ///
    /// Events at or after the horizon stay queued, so a simulation can be
    /// resumed past the horizon later. The clock does not advance when
    /// `None` is returned.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        let b = self.locate_min()?;
        if self.buckets[b].last().expect("tail").at < horizon.as_micros() {
            Some(self.pop_from(b))
        } else {
            None
        }
    }

    /// Pops *every* event sharing the earliest pending timestamp, in
    /// FIFO order, appending them to `out`; returns that timestamp.
    ///
    /// Simultaneous events sit adjacent in one bucket, so draining the
    /// batch costs one bucket lookup plus one `Vec::pop` per event —
    /// dispatch loops that treat an instant as a unit (the common DES
    /// "simultaneous event" pattern) skip per-event queue searches.
    pub fn pop_batch(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        let b = self.locate_min()?;
        let at = self.buckets[b].last().expect("tail").at;
        // Ties hash to the same bucket and sit at its tail in reverse
        // FIFO order, so pop until the tail's timestamp changes.
        while self.buckets[b].last().map(|s| s.at) == Some(at) {
            let slot = self.buckets[b].pop().expect("tail checked");
            self.len -= 1;
            out.push(slot.event);
        }
        self.now = SimTime::from_micros(at);
        if self.len < self.buckets.len() / 2 && self.buckets.len() > MIN_BUCKETS {
            let n = (self.buckets.len() / 2).max(MIN_BUCKETS);
            self.rebuild(n);
        }
        Some(self.now)
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.len = 0;
    }

    /// Rehashes every event into `nbuckets` buckets, re-estimating the
    /// bucket width from the spacing of the head cluster (the `2 *
    /// nbuckets` earliest events), which keeps a single far-future
    /// outlier from stretching the width until every near-term event
    /// lands in one bucket.
    fn rebuild(&mut self, nbuckets: usize) {
        let mut all: Vec<Slot<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            all.append(bucket);
        }
        if all.len() >= 2 {
            let mut ats: Vec<u64> = all.iter().map(|s| s.at).collect();
            let k = (ats.len() - 1).min(nbuckets * 2);
            let (head, kth, _) = ats.select_nth_unstable(k);
            let lo = head.iter().min().copied().unwrap_or(*kth).min(*kth);
            let width = ((*kth - lo) / k as u64).max(1);
            // Round down to a power of two (at most 2× narrower than the
            // estimate) so the day mapping stays division-free.
            self.width_shift = width.ilog2();
        }
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        // Re-sorting per bucket preserves (at, seq) order exactly; the
        // sort key is unique, so stability is irrelevant.
        for slot in all {
            let b = self.bucket_of(slot.at);
            self.buckets[b].push(slot);
        }
        for bucket in &mut self.buckets {
            bucket.sort_unstable_by_key(|s| std::cmp::Reverse((s.at, s.seq)));
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// The original `BinaryHeap` future-event list, retained verbatim as the
/// reference implementation: the differential property suite checks the
/// calendar queue pops the identical `(time, event)` sequence, and
/// `figures bench` reports the calendar queue's speedup over it (the
/// `event_queue_baseline` entry in `BENCH_<n>.json`).
///
/// Same contract as [`EventQueue`]: non-decreasing timestamps, FIFO at
/// equal instants, debug-panic on scheduling into the past.
#[derive(Debug, Clone)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to get earliest-first, with the
        // sequence number breaking ties FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The timestamp of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is earlier than [`HeapQueue::now`];
    /// in release builds the event fires at the current time instead.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: {at} < {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Pops the earliest event only if it is strictly before `horizon`.
    pub fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? < horizon {
            self.pop()
        } else {
            None
        }
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(1), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn pop_before_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(3), "b");
        assert_eq!(
            q.pop_before(SimTime::from_secs(2)),
            Some((SimTime::from_secs(1), "a"))
        );
        assert_eq!(q.pop_before(SimTime::from_secs(2)), None);
        assert_eq!(q.len(), 1);
        // Resume with a later horizon.
        assert_eq!(
            q.pop_before(SimTime::from_secs(4)),
            Some((SimTime::from_secs(3), "b"))
        );
    }

    #[test]
    fn pop_before_exact_horizon_is_exclusive() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.pop_before(SimTime::from_secs(2)), None);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn resize_preserves_order_across_growth_and_shrink() {
        // Push enough to force several doublings, interleaved with pops
        // to trigger shrink rebuilds on the way back down.
        let mut q = EventQueue::new();
        let mut expect = Vec::new();
        for i in 0u64..500 {
            let at = (i * 7919) % 10_000; // pseudo-random but repeatable
            q.schedule(SimTime::from_micros(at), i);
            expect.push((at, i));
        }
        expect.sort_by_key(|&(at, i)| (at, i));
        let got: Vec<(u64, u64)> =
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_micros(), e))).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn handles_simtime_extremes() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, "end of time");
        q.schedule(SimTime::ZERO, "zero");
        q.schedule(SimTime::MAX, "after end of time"); // FIFO at the same extreme
        assert_eq!(q.pop(), Some((SimTime::ZERO, "zero")));
        assert_eq!(q.pop(), Some((SimTime::MAX, "end of time")));
        assert_eq!(q.pop(), Some((SimTime::MAX, "after end of time")));
        assert_eq!(q.now(), SimTime::MAX);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_batch_drains_exactly_the_earliest_instant() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), "later");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(1), "b");
        q.schedule(SimTime::from_secs(1), "c");
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), Some(SimTime::from_secs(1)));
        assert_eq!(batch, vec!["a", "b", "c"], "FIFO within the instant");
        assert_eq!(q.now(), SimTime::from_secs(1));
        assert_eq!(q.len(), 1);
        batch.clear();
        assert_eq!(q.pop_batch(&mut batch), Some(SimTime::from_secs(2)));
        assert_eq!(batch, vec!["later"]);
        assert_eq!(q.pop_batch(&mut batch), None);
    }

    /// Satellite fix: the past-scheduling contract. Debug builds must
    /// reject time travel loudly (the queue cannot pop it "before" events
    /// already emitted), release builds clamp to `now`.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "scheduled event in the past")]
    fn heap_queue_scheduling_in_the_past_panics_in_debug() {
        let mut q = HeapQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn scheduling_in_the_past_clamps_to_now_in_release() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "first");
        q.pop();
        q.schedule(SimTime::from_secs(5), "late");
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), "late")));
    }

    /// Reference model: a plain `Vec` of `(at, seq)` keys re-sorted after
    /// every mutation — obviously correct, O(n log n) per op.
    #[derive(Debug, Default)]
    struct ModelQueue {
        pending: Vec<(SimTime, u64)>,
        seq: u64,
        now: SimTime,
    }

    impl ModelQueue {
        fn schedule(&mut self, at: SimTime) {
            self.pending.push((at.max(self.now), self.seq));
            self.seq += 1;
            self.pending.sort_unstable();
        }
        fn pop(&mut self) -> Option<(SimTime, u64)> {
            if self.pending.is_empty() {
                return None;
            }
            let (at, seq) = self.pending.remove(0);
            self.now = at;
            Some((at, seq))
        }
        fn pop_before(&mut self, horizon: SimTime) -> Option<(SimTime, u64)> {
            if self.pending.first()?.0 < horizon {
                self.pop()
            } else {
                None
            }
        }
    }

    proptest! {
        /// Satellite property: under arbitrary interleavings of
        /// schedule / pop / pop_before / clear — including manufactured
        /// FIFO ties and `SimTime` extremes — the calendar queue agrees
        /// step-for-step with the sorted-`Vec` model AND with the
        /// retained `HeapQueue` oracle.
        ///
        /// Ops are encoded as `(kind, value)` pairs: kinds 0-2 schedule
        /// at `now + value`, 3-4 schedule at `now` (FIFO ties), 5
        /// schedules at `SimTime::MAX` (extreme), 6-7 pop, 8 pops
        /// before `now + value`, 9 clears.
        #[test]
        fn prop_calendar_queue_matches_model_and_heap(
            ops in proptest::collection::vec((0u8..10, 0u64..10_000), 1..300),
        ) {
            let mut q = EventQueue::new();
            let mut heap = HeapQueue::new();
            let mut model = ModelQueue::default();
            for &(kind, val) in &ops {
                match kind {
                    0..=4 => {
                        // The model tracks `now` identically, so the same
                        // absolute time is valid for all three.
                        let at = match kind {
                            0..=2 => model.now + crate::SimDuration::from_micros(val),
                            3 | 4 => model.now,
                            _ => unreachable!(),
                        };
                        let seq = model.seq;
                        q.schedule(at, seq);
                        heap.schedule(at, seq);
                        model.schedule(at);
                    }
                    5 => {
                        let seq = model.seq;
                        q.schedule(SimTime::MAX, seq);
                        heap.schedule(SimTime::MAX, seq);
                        model.schedule(SimTime::MAX);
                    }
                    6 | 7 => {
                        let want = model.pop();
                        prop_assert_eq!(q.pop(), want);
                        prop_assert_eq!(heap.pop(), want);
                    }
                    8 => {
                        let horizon = model.now + crate::SimDuration::from_micros(val);
                        let want = model.pop_before(horizon);
                        prop_assert_eq!(q.pop_before(horizon), want);
                        prop_assert_eq!(heap.pop_before(horizon), want);
                    }
                    _ => {
                        q.clear();
                        heap.clear();
                        model.pending.clear();
                    }
                }
                prop_assert_eq!(q.len(), model.pending.len());
                prop_assert_eq!(q.is_empty(), model.pending.is_empty());
                prop_assert_eq!(q.peek_time(), model.pending.first().map(|&(at, _)| at));
            }
            // Drain whatever is left: full agreement to the end.
            loop {
                let want = model.pop();
                let got = q.pop();
                prop_assert_eq!(got, want);
                if got.is_none() {
                    break;
                }
            }
        }

        /// Popped timestamps are always non-decreasing regardless of the
        /// scheduling order.
        #[test]
        fn prop_pop_order_is_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((at, _)) = q.pop() {
                prop_assert!(at >= last);
                last = at;
            }
        }

        /// Every scheduled event is eventually popped exactly once.
        #[test]
        fn prop_no_event_lost(times in proptest::collection::vec(0u64..1_000, 1..100)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(*t), i);
            }
            let mut seen: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        }

        /// `pop_batch` is equivalent to repeated `pop` at one instant.
        #[test]
        fn prop_pop_batch_equals_pop_loop(times in proptest::collection::vec(0u64..50, 1..120)) {
            let mut a = EventQueue::new();
            let mut b = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                a.schedule(SimTime::from_micros(*t), i);
                b.schedule(SimTime::from_micros(*t), i);
            }
            let mut batch = Vec::new();
            while let Some(at) = a.pop_batch(&mut batch) {
                for e in batch.drain(..) {
                    prop_assert_eq!(b.pop(), Some((at, e)));
                }
                prop_assert_eq!(a.now(), b.now());
            }
            prop_assert!(b.is_empty());
        }
    }
}
