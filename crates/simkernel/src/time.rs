//! Simulated time.
//!
//! Simulated time is kept as an integer number of microseconds so that
//! event ordering is exact: two runs with the same seed produce identical
//! event interleavings, with no floating-point drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in microseconds since simulation
/// start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Adding a
/// [`SimDuration`] saturates at the far future rather than overflowing.
///
/// # Example
///
/// ```
/// use simkernel::{SimDuration, SimTime};
///
/// let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(t.as_micros(), 2_500_000);
/// assert_eq!(format!("{t}"), "2.500s");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use simkernel::SimDuration;
///
/// let d = SimDuration::from_millis(3) * 4;
/// assert_eq!(d.as_millis_f64(), 12.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event can be scheduled after it.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the instant as microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, or [`SimDuration::ZERO`] if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs are clamped to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e6).round().min(u64::MAX as f64) as u64)
    }

    /// Creates a span from fractional milliseconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs are clamped to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Returns the span in whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Time elapsed between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{:03}s",
            self.0 / 1_000_000,
            (self.0 % 1_000_000) / 1_000
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_millis(250).as_millis_f64(), 250.0);
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(500));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::from_secs(1) - SimDuration::from_secs(2),
            SimDuration::ZERO
        );
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    fn scaling() {
        assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_millis(6));
        assert_eq!(
            SimDuration::from_millis(3) * 0.5,
            SimDuration::from_micros(1_500)
        );
        assert_eq!(SimDuration::from_millis(6) / 2, SimDuration::from_millis(3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1_250)), "1.250s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }
}
