//! Seedable pseudo-random number generation and the distributions used by
//! the simulators.
//!
//! The generator is a PCG-XSH-RR 64/32 pair combined into 64-bit outputs.
//! Keeping the generator in-tree (rather than depending on `rand`) pins the
//! exact output stream, so every experiment in the repository reproduces
//! bit-for-bit across toolchain and dependency upgrades.

/// A small, fast, seedable PRNG (two PCG-XSH-RR 64/32 streams).
///
/// Not cryptographically secure; intended for simulation only.
///
/// # Example
///
/// ```
/// use simkernel::Pcg64;
///
/// let mut a = Pcg64::seed_from_u64(42);
/// let mut b = Pcg64::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// let x = a.f64(); // uniform in [0, 1)
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: [u64; 2],
    inc: [u64; 2],
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg64 {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Distinct seeds yield statistically independent streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into state + increments.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut rng = Pcg64 {
            state: [next(), next()],
            inc: [next() | 1, next() | 1],
        };
        // Warm up so low-entropy seeds decorrelate.
        for _ in 0..4 {
            rng.next_u64();
        }
        rng
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated component its own stream.
    pub fn fork(&mut self, stream: u64) -> Pcg64 {
        Pcg64::seed_from_u64(self.next_u64() ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
    }

    fn step(&mut self, lane: usize) -> u32 {
        let old = self.state[lane];
        self.state[lane] = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc[lane]);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next uniformly distributed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.step(0) as u64;
        let lo = self.step(1) as u64;
        (hi << 32) | lo
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift with rejection for unbiasedness (Lemire).
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exports the generator's exact stream position as four words:
    /// `[state0, state1, inc0, inc1]`. Feeding them back through
    /// [`Pcg64::from_state_words`] resumes the output stream with no
    /// gap — the foundation of crash-safe checkpointing.
    ///
    /// # Example
    ///
    /// ```
    /// use simkernel::Pcg64;
    ///
    /// let mut a = Pcg64::seed_from_u64(9);
    /// a.next_u64();
    /// let mut b = Pcg64::from_state_words(a.state_words());
    /// assert_eq!(a.next_u64(), b.next_u64());
    /// ```
    pub fn state_words(&self) -> [u64; 4] {
        [self.state[0], self.state[1], self.inc[0], self.inc[1]]
    }

    /// Rebuilds a generator at an exact position previously exported by
    /// [`Pcg64::state_words`]. The increments must come from a real
    /// generator (they are odd by construction); arbitrary words give a
    /// valid but unvetted stream.
    pub fn from_state_words(words: [u64; 4]) -> Self {
        Pcg64 {
            state: [words[0], words[1]],
            inc: [words[2], words[3]],
        }
    }

    /// Picks an index according to the given (not necessarily normalized)
    /// non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index on empty weights");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

/// Exponential distribution parameterized by rate (events per microsecond
/// when used with [`Exponential::sample_micros`]).
///
/// # Example
///
/// ```
/// use simkernel::Pcg64;
/// use simkernel::rng::Exponential;
///
/// let mut rng = Pcg64::seed_from_u64(1);
/// // Mean inter-arrival of 7 simulated seconds (rate per microsecond):
/// let think = Exponential::new(1.0 / 7_000_000.0);
/// let sample = think.sample_micros(&mut rng);
/// assert!(sample > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate λ.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "rate must be positive, got {rate}"
        );
        Exponential { rate }
    }

    /// Creates an exponential distribution with the given mean (1/λ).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive, got {mean}"
        );
        Exponential { rate: 1.0 / mean }
    }

    /// Draws a sample (same unit as the rate's denominator).
    pub fn sample(&self, rng: &mut Pcg64) -> f64 {
        // Inverse CDF; 1 - f64() is in (0, 1] so ln() is finite.
        -(1.0 - rng.f64()).ln() / self.rate
    }

    /// Draws a sample rounded to whole microseconds (at least 1).
    pub fn sample_micros(&self, rng: &mut Pcg64) -> u64 {
        (self.sample(rng).round() as u64).max(1)
    }
}

/// Truncated normal distribution (samples outside `[min, max]` are
/// clamped), via the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
}

impl Normal {
    /// Creates a normal distribution clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or `min > max`.
    pub fn clamped(mean: f64, std_dev: f64, min: f64, max: f64) -> Self {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        assert!(min <= max, "min must not exceed max");
        Normal {
            mean,
            std_dev,
            min,
            max,
        }
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut Pcg64) -> f64 {
        let u1 = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mean + z * self.std_dev).clamp(self.min, self.max)
    }
}

/// Log-normal distribution parameterized by its **linear-space mean** and
/// the shape σ of the underlying normal, for heavy-tailed think and
/// service times: σ controls tail weight while the mean stays fixed, so
/// swapping an [`Exponential`] for a `LogNormal` of the same mean changes
/// variability without changing offered load.
///
/// # Example
///
/// ```
/// use simkernel::Pcg64;
/// use simkernel::rng::LogNormal;
///
/// let mut rng = Pcg64::seed_from_u64(1);
/// let d = LogNormal::with_mean(7.0, 1.0); // mean 7, heavy tail
/// assert!(d.sample(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution whose samples have the given
    /// linear-space mean: `μ = ln(mean) − σ²/2`, so
    /// `E[X] = exp(μ + σ²/2) = mean` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive or `sigma` is not
    /// finite and non-negative.
    pub fn with_mean(mean: f64, sigma: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive, got {mean}"
        );
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "sigma must be non-negative, got {sigma}"
        );
        LogNormal {
            mu: mean.ln() - sigma * sigma / 2.0,
            sigma,
        }
    }

    /// The σ of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws a sample (always positive) via one Box–Muller normal draw.
    pub fn sample(&self, rng: &mut Pcg64) -> f64 {
        let u1 = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Zipf distribution over `{1, …, n}` with exponent `s`, for skewed
/// popularity (e.g. which catalogue item a browsing session touches).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    /// Cumulative probabilities, one per rank.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample(&self, rng: &mut Pcg64) -> usize {
        let x = rng.f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

/// Bounded Pareto distribution for heavy-tailed service demands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution on `[lo, hi]` with shape
    /// `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not `0 < lo < hi` or `alpha` is not
    /// positive.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(lo > 0.0 && lo < hi, "need 0 < lo < hi");
        BoundedPareto { alpha, lo, hi }
    }

    /// Draws a sample in `[lo, hi]`.
    pub fn sample(&self, rng: &mut Pcg64) -> f64 {
        let u = rng.f64();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha);
        x.clamp(self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = Pcg64::seed_from_u64(123);
        let mut b = Pcg64::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg64::seed_from_u64(1);
        let mut b = Pcg64::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_decorrelated() {
        let mut parent = Pcg64::seed_from_u64(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_close_to_half() {
        let mut rng = Pcg64::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Pcg64::seed_from_u64(17);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.below(10) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Pcg64::seed_from_u64(0).below(0);
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut rng = Pcg64::seed_from_u64(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1000 {
            match rng.range_inclusive(4, 6) {
                4 => saw_lo = true,
                6 => saw_hi = true,
                5 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Pcg64::seed_from_u64(11);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.03, "frac {frac2}");
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = Pcg64::seed_from_u64(21);
        let d = Exponential::with_mean(250.0);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 250.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn exponential_sample_micros_at_least_one() {
        let mut rng = Pcg64::seed_from_u64(21);
        let d = Exponential::with_mean(0.0001);
        for _ in 0..100 {
            assert!(d.sample_micros(&mut rng) >= 1);
        }
    }

    #[test]
    fn normal_clamped_stays_in_bounds() {
        let mut rng = Pcg64::seed_from_u64(8);
        let d = Normal::clamped(10.0, 100.0, 0.0, 20.0);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((0.0..=20.0).contains(&x));
        }
    }

    #[test]
    fn lognormal_mean_matches() {
        let mut rng = Pcg64::seed_from_u64(37);
        let d = LogNormal::with_mean(7.0, 1.0);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn lognormal_variance_matches() {
        // Var[X] = mean² · (exp(σ²) − 1).
        let mut rng = Pcg64::seed_from_u64(41);
        let d = LogNormal::with_mean(10.0, 0.5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let expected = 100.0 * ((0.5f64 * 0.5).exp() - 1.0);
        assert!(
            (var - expected).abs() / expected < 0.05,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn lognormal_heavier_sigma_heavier_tail() {
        let mut a = Pcg64::seed_from_u64(55);
        let mut b = Pcg64::seed_from_u64(55);
        let light = LogNormal::with_mean(7.0, 0.25);
        let heavy = LogNormal::with_mean(7.0, 1.5);
        let n = 50_000;
        let over = |d: &LogNormal, rng: &mut Pcg64| (0..n).filter(|_| d.sample(rng) > 28.0).count();
        assert!(over(&heavy, &mut a) > 4 * over(&light, &mut b));
    }

    #[test]
    fn lognormal_sigma_zero_is_constant() {
        let mut rng = Pcg64::seed_from_u64(2);
        let d = LogNormal::with_mean(3.0, 0.0);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!((x - 3.0).abs() < 1e-12, "{x}");
        }
    }

    #[test]
    fn lognormal_is_deterministic() {
        let d = LogNormal::with_mean(7.0, 1.0);
        let mut a = Pcg64::seed_from_u64(99);
        let mut b = Pcg64::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(d.sample(&mut a).to_bits(), d.sample(&mut b).to_bits());
        }
    }

    #[test]
    fn zipf_rank_one_most_popular() {
        let mut rng = Pcg64::seed_from_u64(13);
        let d = Zipf::new(50, 1.0);
        let mut counts = [0u32; 50];
        for _ in 0..50_000 {
            counts[d.sample(&mut rng) - 1] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[40]);
    }

    #[test]
    fn bounded_pareto_in_bounds() {
        let mut rng = Pcg64::seed_from_u64(29);
        let d = BoundedPareto::new(1.5, 1.0, 100.0);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x), "{x}");
        }
    }

    proptest! {
        #[test]
        fn prop_below_always_in_range(seed: u64, bound in 1u64..1_000_000) {
            let mut rng = Pcg64::seed_from_u64(seed);
            for _ in 0..32 {
                prop_assert!(rng.below(bound) < bound);
            }
        }

        #[test]
        fn prop_zipf_in_range(seed: u64, n in 1usize..200, s in 0.0f64..3.0) {
            let mut rng = Pcg64::seed_from_u64(seed);
            let d = Zipf::new(n, s);
            for _ in 0..16 {
                let k = d.sample(&mut rng);
                prop_assert!((1..=n).contains(&k));
            }
        }

        #[test]
        fn prop_exponential_positive(seed: u64, mean in 0.001f64..1e6) {
            let mut rng = Pcg64::seed_from_u64(seed);
            let d = Exponential::with_mean(mean);
            for _ in 0..16 {
                prop_assert!(d.sample(&mut rng) >= 0.0);
            }
        }

        #[test]
        fn prop_lognormal_positive_and_finite(seed: u64, mean in 0.001f64..1e6, sigma in 0.0f64..3.0) {
            let mut rng = Pcg64::seed_from_u64(seed);
            let d = LogNormal::with_mean(mean, sigma);
            for _ in 0..16 {
                let x = d.sample(&mut rng);
                prop_assert!(x > 0.0 && x.is_finite());
            }
        }
    }
}
