//! Ordinary least squares and polynomial regression.

use std::error::Error;
use std::fmt;

use crate::matrix::{solve, LinAlgError, Matrix};

/// Error raised when a regression cannot be fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegressionError {
    /// No samples were supplied.
    Empty,
    /// Sample feature vectors have inconsistent lengths, or `xs`/`ys`
    /// lengths differ.
    Ragged,
    /// Fewer samples than model coefficients (under-determined even after
    /// ridge regularization failed).
    Underdetermined {
        /// Number of samples supplied.
        samples: usize,
        /// Number of coefficients the model needs.
        coefficients: usize,
    },
    /// The normal equations were singular and the ridge fallback also
    /// failed.
    Singular,
}

impl fmt::Display for RegressionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressionError::Empty => write!(f, "no samples supplied"),
            RegressionError::Ragged => write!(f, "inconsistent sample dimensions"),
            RegressionError::Underdetermined {
                samples,
                coefficients,
            } => {
                write!(
                    f,
                    "under-determined fit: {samples} samples for {coefficients} coefficients"
                )
            }
            RegressionError::Singular => {
                write!(f, "normal equations singular even with ridge fallback")
            }
        }
    }
}

impl Error for RegressionError {}

/// Solves the ordinary-least-squares problem `argmin_w ||X w − y||²` via
/// the normal equations, falling back to a small ridge penalty when the
/// Gram matrix is singular.
///
/// Each row of `design` is one sample's feature vector.
///
/// # Errors
///
/// Returns [`RegressionError`] when the inputs are empty/ragged or the
/// system cannot be solved.
///
/// # Example
///
/// ```
/// use numerics::least_squares;
///
/// // y = 2 x + 1, features [1, x]
/// let design = vec![vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]];
/// let w = least_squares(&design, &[1.0, 3.0, 5.0]).unwrap();
/// assert!((w[0] - 1.0).abs() < 1e-9);
/// assert!((w[1] - 2.0).abs() < 1e-9);
/// ```
pub fn least_squares(design: &[Vec<f64>], y: &[f64]) -> Result<Vec<f64>, RegressionError> {
    if design.is_empty() || y.is_empty() {
        return Err(RegressionError::Empty);
    }
    let k = design[0].len();
    if k == 0 || design.len() != y.len() || design.iter().any(|r| r.len() != k) {
        return Err(RegressionError::Ragged);
    }

    let x = Matrix::from_rows(design);
    let xt = x.transpose();
    let mut gram = xt.mul(&x).expect("shapes agree by construction");
    let rhs = xt.mul_vec(y).expect("shapes agree by construction");

    match solve(&gram, &rhs) {
        Ok(w) => Ok(w),
        Err(LinAlgError::Singular) => {
            // Ridge fallback: tiny L2 penalty scaled to the Gram diagonal.
            let scale = (0..k)
                .map(|i| gram[(i, i)].abs())
                .fold(0.0f64, f64::max)
                .max(1.0);
            gram.add_diagonal(1e-8 * scale);
            solve(&gram, &rhs).map_err(|_| RegressionError::Singular)
        }
        Err(_) => unreachable!("gram matrix is square"),
    }
}

/// Goodness-of-fit metrics for a fitted model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitQuality {
    /// Coefficient of determination in `(-∞, 1]`; 1 is a perfect fit.
    pub r_squared: f64,
    /// Root-mean-square error of the residuals.
    pub rmse: f64,
    /// Number of training samples.
    pub samples: usize,
}

/// A quadratic polynomial model with cross terms:
///
/// `ŷ = w₀ + Σᵢ wᵢ xᵢ + Σᵢ wᵢᵢ xᵢ² + Σᵢ<ⱼ wᵢⱼ xᵢ xⱼ`
///
/// This is the model the RAC policy-initialization uses to capture the
/// paper's "concave upward effect" of configuration parameters on response
/// time and to predict the performance of configurations never measured.
///
/// Inputs are standardized internally (zero mean, unit variance per
/// feature) for conditioning; predictions transparently undo this.
///
/// # Example
///
/// ```
/// use numerics::PolynomialModel;
///
/// let xs = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0],
///               vec![1.0, 1.0], vec![2.0, 1.0], vec![1.0, 2.0], vec![2.0, 2.0]];
/// let ys: Vec<f64> = xs.iter().map(|v| 1.0 + v[0] + 2.0 * v[1] + v[0] * v[1]).collect();
/// let m = PolynomialModel::fit(&xs, &ys).unwrap();
/// assert!((m.predict(&[3.0, 3.0]) - 19.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PolynomialModel {
    dims: usize,
    weights: Vec<f64>,
    mean: Vec<f64>,
    scale: Vec<f64>,
    quality: FitQuality,
}

impl PolynomialModel {
    /// Number of coefficients the quadratic model needs for `dims` inputs.
    pub fn coefficient_count(dims: usize) -> usize {
        1 + dims + dims + dims * (dims.saturating_sub(1)) / 2
    }

    /// Fits the model to samples `(xs[i], ys[i])`.
    ///
    /// # Errors
    ///
    /// Returns [`RegressionError::Empty`] / [`RegressionError::Ragged`] for
    /// malformed input and [`RegressionError::Underdetermined`] when there
    /// are fewer samples than coefficients.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<Self, RegressionError> {
        if xs.is_empty() || ys.is_empty() {
            return Err(RegressionError::Empty);
        }
        let dims = xs[0].len();
        if dims == 0 || xs.len() != ys.len() || xs.iter().any(|x| x.len() != dims) {
            return Err(RegressionError::Ragged);
        }
        let coefficients = Self::coefficient_count(dims);
        if xs.len() < coefficients {
            return Err(RegressionError::Underdetermined {
                samples: xs.len(),
                coefficients,
            });
        }

        // Standardize features for conditioning.
        let mut mean = vec![0.0; dims];
        for x in xs {
            for (m, v) in mean.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= xs.len() as f64;
        }
        let mut scale = vec![0.0; dims];
        for x in xs {
            for (s, (v, m)) in scale.iter_mut().zip(x.iter().zip(&mean)) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut scale {
            *s = (*s / xs.len() as f64).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature; leave centred at zero
            }
        }

        let design: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| Self::features(dims, &Self::standardize(x, &mean, &scale)))
            .collect();
        let weights = least_squares(&design, ys)?;

        // Goodness of fit on the training data.
        let y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for (row, &y) in design.iter().zip(ys) {
            let pred: f64 = row.iter().zip(&weights).map(|(f, w)| f * w).sum();
            ss_res += (y - pred) * (y - pred);
            ss_tot += (y - y_mean) * (y - y_mean);
        }
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        let quality = FitQuality {
            r_squared,
            rmse: (ss_res / ys.len() as f64).sqrt(),
            samples: ys.len(),
        };

        Ok(PolynomialModel {
            dims,
            weights,
            mean,
            scale,
            quality,
        })
    }

    fn standardize(x: &[f64], mean: &[f64], scale: &[f64]) -> Vec<f64> {
        x.iter()
            .zip(mean.iter().zip(scale))
            .map(|(v, (m, s))| (v - m) / s)
            .collect()
    }

    fn features(dims: usize, z: &[f64]) -> Vec<f64> {
        let mut f = Vec::with_capacity(Self::coefficient_count(dims));
        f.push(1.0);
        f.extend_from_slice(z);
        f.extend(z.iter().map(|v| v * v));
        for i in 0..dims {
            for j in (i + 1)..dims {
                f.push(z[i] * z[j]);
            }
        }
        f
    }

    /// Number of input dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Predicts ŷ for an input point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from [`PolynomialModel::dims`].
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dims, "prediction input has wrong dimension");
        let z = Self::standardize(x, &self.mean, &self.scale);
        Self::features(self.dims, &z)
            .iter()
            .zip(&self.weights)
            .map(|(f, w)| f * w)
            .sum()
    }

    /// Goodness-of-fit metrics computed on the training data.
    pub fn quality(&self) -> FitQuality {
        self.quality
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn least_squares_recovers_line() {
        let design: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 3.0 - 0.5 * i as f64).collect();
        let w = least_squares(&design, &ys).unwrap();
        assert!((w[0] - 3.0).abs() < 1e-9);
        assert!((w[1] + 0.5).abs() < 1e-9);
    }

    #[test]
    fn least_squares_overdetermined_noisy() {
        // y = 4 + 2x with asymmetric but mean-zero-ish noise; fit must be close.
        let design: Vec<Vec<f64>> = (0..100).map(|i| vec![1.0, i as f64 / 10.0]).collect();
        let ys: Vec<f64> = (0..100)
            .map(|i| 4.0 + 2.0 * (i as f64 / 10.0) + if i % 2 == 0 { 0.1 } else { -0.1 })
            .collect();
        let w = least_squares(&design, &ys).unwrap();
        assert!((w[0] - 4.0).abs() < 0.1);
        assert!((w[1] - 2.0).abs() < 0.05);
    }

    #[test]
    fn least_squares_errors() {
        assert_eq!(least_squares(&[], &[]), Err(RegressionError::Empty));
        assert_eq!(
            least_squares(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]),
            Err(RegressionError::Ragged)
        );
        assert_eq!(
            least_squares(&[vec![1.0]], &[1.0, 2.0]),
            Err(RegressionError::Ragged)
        );
    }

    #[test]
    fn least_squares_collinear_uses_ridge() {
        // Perfectly collinear features: normal equations singular, ridge
        // fallback must still return a finite solution.
        let design: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 5.0 * i as f64).collect();
        let w = least_squares(&design, &ys).unwrap();
        assert!(w.iter().all(|v| v.is_finite()));
        // Predictions should still match the targets.
        for i in 0..10 {
            let pred = w[0] * i as f64 + w[1] * 2.0 * i as f64;
            assert!((pred - 5.0 * i as f64).abs() < 1e-3);
        }
    }

    #[test]
    fn polynomial_fits_exact_quadratic() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 2.0 + 3.0 * x[0] - 0.25 * x[0] * x[0])
            .collect();
        let m = PolynomialModel::fit(&xs, &ys).unwrap();
        for x in [0.5, 5.5, 19.5, 25.0] {
            let want = 2.0 + 3.0 * x - 0.25 * x * x;
            assert!((m.predict(&[x]) - want).abs() < 1e-6, "at {x}");
        }
        assert!(m.quality().r_squared > 1.0 - 1e-9);
        assert!(m.quality().rmse < 1e-6);
    }

    #[test]
    fn polynomial_captures_concave_minimum() {
        // The Figure-4 shape: response time concave upward in MaxClients.
        let xs: Vec<Vec<f64>> = (1..=30).map(|i| vec![i as f64 * 20.0]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 0.003 * (x[0] - 280.0).powi(2) + 90.0)
            .collect();
        let m = PolynomialModel::fit(&xs, &ys).unwrap();
        // The fitted minimum should be near 280.
        let best = (1..=60)
            .map(|i| i as f64 * 10.0)
            .min_by(|a, b| m.predict(&[*a]).partial_cmp(&m.predict(&[*b])).unwrap())
            .unwrap();
        assert!((best - 280.0).abs() <= 10.0, "minimum at {best}");
    }

    #[test]
    fn polynomial_multi_dim_cross_terms() {
        let mut xs = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                xs.push(vec![i as f64, j as f64]);
            }
        }
        let ys: Vec<f64> = xs
            .iter()
            .map(|v| 7.0 - v[0] + 0.5 * v[1] * v[1] + 2.0 * v[0] * v[1])
            .collect();
        let m = PolynomialModel::fit(&xs, &ys).unwrap();
        assert!((m.predict(&[10.0, 10.0]) - (7.0 - 10.0 + 50.0 + 200.0)).abs() < 1e-5);
    }

    #[test]
    fn polynomial_underdetermined_errors() {
        let xs = vec![vec![1.0, 2.0], vec![2.0, 3.0]];
        let ys = vec![1.0, 2.0];
        assert_eq!(
            PolynomialModel::fit(&xs, &ys),
            Err(RegressionError::Underdetermined {
                samples: 2,
                coefficients: 6
            })
        );
    }

    #[test]
    fn polynomial_constant_feature_ok() {
        // One feature never varies; standardization must not divide by 0.
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64, 5.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|v| v[0] * 2.0).collect();
        let m = PolynomialModel::fit(&xs, &ys).unwrap();
        assert!((m.predict(&[6.0, 5.0]) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn coefficient_count_formula() {
        assert_eq!(PolynomialModel::coefficient_count(1), 3);
        assert_eq!(PolynomialModel::coefficient_count(2), 6);
        assert_eq!(PolynomialModel::coefficient_count(4), 15);
        assert_eq!(PolynomialModel::coefficient_count(8), 45);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn predict_wrong_dims_panics() {
        let xs: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let ys = vec![0.0; 5];
        let m = PolynomialModel::fit(&xs, &ys).unwrap();
        m.predict(&[1.0, 2.0]);
    }

    #[test]
    fn error_display() {
        assert!(RegressionError::Empty.to_string().contains("no samples"));
        let e = RegressionError::Underdetermined {
            samples: 2,
            coefficients: 6,
        };
        assert!(e.to_string().contains("2 samples"));
    }

    proptest! {
        /// A quadratic model must reproduce any quadratic exactly
        /// (coefficients bounded away from pathological scales).
        #[test]
        fn prop_quadratic_exact(
            a in -5.0f64..5.0, b in -5.0f64..5.0, c in -5.0f64..5.0,
        ) {
            let xs: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64]).collect();
            let ys: Vec<f64> = xs.iter().map(|x| a + b * x[0] + c * x[0] * x[0]).collect();
            let m = PolynomialModel::fit(&xs, &ys).unwrap();
            for x in [1.5, 7.25, 20.0] {
                let want = a + b * x + c * x * x;
                let got = m.predict(&[x]);
                prop_assert!((got - want).abs() < 1e-5 * (1.0 + want.abs()), "{got} vs {want}");
            }
        }
    }
}
