//! Small numerical kit used by the RAC policy-initialization pipeline.
//!
//! The paper's policy initialization samples a coarse grid of
//! configurations, fits a polynomial-regression model of performance as a
//! function of the (grouped) configuration parameters, and uses the model
//! to predict the performance of configurations that were never measured
//! (Section 4.1, Figure 4). This crate provides exactly the numerics that
//! pipeline needs, from scratch:
//!
//! * [`Matrix`] — a dense row-major matrix with the handful of operations
//!   regression requires.
//! * [`solve`] — Gaussian elimination with partial pivoting.
//! * [`least_squares`] — ordinary least squares via the normal equations
//!   (with a small ridge fallback when the system is singular).
//! * [`PolynomialModel`] — quadratic-with-cross-terms feature expansion,
//!   fit + predict, and goodness-of-fit metrics ([`FitQuality`]).
//!
//! # Example
//!
//! Fit the concave response-time curve of Figure 4:
//!
//! ```
//! use numerics::PolynomialModel;
//!
//! // (MaxClients, response time): a noisy parabola with a minimum.
//! let xs: Vec<Vec<f64>> = (1..=20).map(|i| vec![i as f64 * 30.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| {
//!     let m = x[0];
//!     0.002 * (m - 300.0).powi(2) + 120.0
//! }).collect();
//!
//! let model = PolynomialModel::fit(&xs, &ys).unwrap();
//! let at_minimum = model.predict(&[300.0]);
//! let off_minimum = model.predict(&[60.0]);
//! assert!(at_minimum < off_minimum);
//! assert!(model.quality().r_squared > 0.999);
//! ```

mod matrix;
mod regression;

pub use matrix::{solve, LinAlgError, Matrix};
pub use regression::{least_squares, FitQuality, PolynomialModel, RegressionError};
