//! Dense row-major matrices and linear solves.

use std::error::Error;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Error raised by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinAlgError {
    /// Operand shapes are incompatible (expected vs. got, as `(rows, cols)`).
    ShapeMismatch {
        /// Shape required by the operation.
        expected: (usize, usize),
        /// Shape actually supplied.
        got: (usize, usize),
    },
    /// The system is singular (no pivot larger than the tolerance).
    Singular,
}

impl fmt::Display for LinAlgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinAlgError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "shape mismatch: expected {}x{}, got {}x{}",
                    expected.0, expected.1, got.0, got.1
                )
            }
            LinAlgError::Singular => write!(f, "matrix is singular to working precision"),
        }
    }
}

impl Error for LinAlgError {}

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use numerics::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinAlgError::ShapeMismatch`] when the inner dimensions
    /// differ.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, LinAlgError> {
        if self.cols != rhs.rows {
            return Err(LinAlgError::ShapeMismatch {
                expected: (self.cols, rhs.cols),
                got: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinAlgError::ShapeMismatch`] when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, LinAlgError> {
        if v.len() != self.cols {
            return Err(LinAlgError::ShapeMismatch {
                expected: (self.cols, 1),
                got: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * v[j]).sum())
            .collect())
    }

    /// Adds `lambda` to every diagonal element (ridge regularization).
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

/// Solves the square linear system `a * x = b` by Gaussian elimination
/// with partial pivoting.
///
/// # Errors
///
/// Returns [`LinAlgError::ShapeMismatch`] when `a` is not square or `b` has
/// the wrong length, and [`LinAlgError::Singular`] when no usable pivot is
/// found.
///
/// # Example
///
/// ```
/// use numerics::{solve, Matrix};
///
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
/// let x = solve(&a, &[3.0, 5.0]).unwrap();
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinAlgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinAlgError::ShapeMismatch {
            expected: (n, n),
            got: (a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(LinAlgError::ShapeMismatch {
            expected: (n, 1),
            got: (b.len(), 1),
        });
    }

    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: the largest magnitude entry in this column.
        let pivot_row = (col..n)
            .max_by(|&r1, &r2| m[(r1, col)].abs().partial_cmp(&m[(r2, col)].abs()).unwrap())
            .unwrap();
        let pivot = m[(pivot_row, col)];
        if pivot.abs() < 1e-12 {
            return Err(LinAlgError::Singular);
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            rhs.swap(col, pivot_row);
        }
        for row in (col + 1)..n {
            let factor = m[(row, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = m[(col, j)];
                m[(row, j)] -= factor * v;
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for j in (row + 1)..n {
            acc -= m[(row, j)] * x[j];
        }
        x[row] = acc / m[(row, row)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(4);
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(solve(&a, &b).unwrap(), b.to_vec());
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[
            vec![3.0, 2.0, -1.0],
            vec![2.0, -2.0, 4.0],
            vec![-1.0, 0.5, -1.0],
        ]);
        let x = solve(&a, &[1.0, -2.0, 0.0]).unwrap();
        for (got, want) in x.iter().zip([1.0, -2.0, -2.0]) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the leading position forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn solve_singular_errors() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(LinAlgError::Singular));
    }

    #[test]
    fn solve_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(LinAlgError::ShapeMismatch { .. })
        ));
        let sq = Matrix::identity(2);
        assert!(matches!(
            solve(&sq, &[1.0]),
            Err(LinAlgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn mul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let ab = a.mul(&b).unwrap();
        assert_eq!(ab, Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]));
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.mul(&b).is_err());
        assert!(a.mul_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn mul_vec_works() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]).unwrap(), vec![6.0, 15.0]);
    }

    #[test]
    fn add_diagonal_ridge() {
        let mut a = Matrix::zeros(2, 2);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 0.5);
        assert_eq!(a[(1, 1)], 0.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }

    #[test]
    fn display_of_errors() {
        assert!(LinAlgError::Singular.to_string().contains("singular"));
        let e = LinAlgError::ShapeMismatch {
            expected: (2, 2),
            got: (3, 1),
        };
        assert!(e.to_string().contains("2x2"));
    }

    proptest! {
        /// For a diagonally dominant (thus nonsingular) matrix, solve then
        /// multiply back recovers the RHS.
        #[test]
        fn prop_solve_round_trips(
            vals in proptest::collection::vec(-10.0f64..10.0, 9),
            b in proptest::collection::vec(-10.0f64..10.0, 3),
        ) {
            let mut a = Matrix::zeros(3, 3);
            for i in 0..3 {
                for j in 0..3 {
                    a[(i, j)] = vals[i * 3 + j];
                }
                a[(i, i)] += 40.0; // force diagonal dominance
            }
            let x = solve(&a, &b).unwrap();
            let back = a.mul_vec(&x).unwrap();
            for (got, want) in back.iter().zip(&b) {
                prop_assert!((got - want).abs() < 1e-6);
            }
        }
    }
}
