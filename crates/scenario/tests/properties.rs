//! Property tests for the `.scn` parser and timeline compiler.
//!
//! Three contracts, each checked on randomized inputs:
//!  1. `Display` is a canonical form — rendering any scenario and
//!     re-parsing it yields an identical value;
//!  2. malformed lines are rejected with the correct 1-based line
//!     number;
//!  3. compiled timelines are totally ordered by `(t, seq)` with every
//!     sequence number unique, and compilation is deterministic.

use proptest::prelude::*;
use scenario::{Directive, EventKind, Scenario, Tier};
use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;

fn mix(i: u64) -> Mix {
    Mix::ALL[(i % 3) as usize]
}

fn level(i: u64) -> ResourceLevel {
    ResourceLevel::ALL[(i % 3) as usize]
}

/// Builds a directive of shape `which` from bounded raw ingredients.
/// Times land on a 1-second grid inside the scenario duration; values
/// are arbitrary finite floats from the strategy ranges.
fn directive(which: u64, t_s: u64, span_s: u64, a: f64, b: f64) -> Directive {
    let t = SimDuration::from_secs(t_s);
    let t1 = SimDuration::from_secs(t_s + span_s);
    let dur = SimDuration::from_secs(span_s);
    match which % 13 {
        0 => Directive::IntensityAt { t, value: a },
        1 => Directive::IntensityRamp {
            t0: t,
            t1,
            from: a,
            to: b,
        },
        2 => Directive::IntensitySine {
            t0: t,
            t1,
            base: a + b, // base > amp since both are positive
            amp: b,
            period: dur,
        },
        3 => Directive::IntensitySpike {
            t,
            peak: a,
            rise: dur,
            decay: dur,
        },
        4 => Directive::MixAt { t, mix: mix(which) },
        5 => Directive::MixDrift {
            t0: t,
            t1,
            from: Mix::Shopping,
            to: Mix::Ordering,
        },
        6 => Directive::LevelAt {
            t,
            level: level(which / 11),
        },
        7 => Directive::Stall {
            t,
            tier: if which.is_multiple_of(2) {
                Tier::Web
            } else {
                Tier::AppDb
            },
            dur,
        },
        8 => Directive::Noise { t, factor: a, dur },
        9 => Directive::Outlier { t, factor: a },
        10 => Directive::Blackout { t, dur },
        11 => Directive::Timeout { t },
        _ => Directive::Drop { t },
    }
}

proptest! {
    #[test]
    fn display_round_trips_through_the_parser(
        duration_ivals in 2u64..25,
        interval_s in 1u64..400,
        warmup_s in 0u64..900,
        clients_sel in 0usize..2000,
        seed_sel: u64,
        header_sel: u64,
        dirs in proptest::collection::vec(
            ((0u64..u64::MAX, 0u64..7000, 1u64..4000), (0.001f64..50.0, 0.001f64..50.0)),
            0..12,
        ),
    ) {
        let clients = if clients_sel == 0 { None } else { Some(clients_sel) };
        let seed = if seed_sel % 2 == 0 { None } else { Some(seed_sel) };
        let scn = Scenario {
            name: format!("p{header_sel}"),
            duration: SimDuration::from_secs(duration_ivals * interval_s),
            interval: SimDuration::from_secs(interval_s),
            warmup: SimDuration::from_secs(warmup_s),
            clients,
            mix: mix(header_sel),
            level: level(header_sel / 3),
            seed,
            directives: dirs
                .into_iter()
                .map(|((w, t, span), (a, b))| directive(w, t, span, a, b))
                .collect(),
        };
        let text = scn.to_string();
        let reparsed = Scenario::parse(&text);
        prop_assert_eq!(reparsed.as_ref(), Ok(&scn), "no round-trip for:\n{}", text);
        // Canonical form is a fixed point: render → parse → render is
        // byte-identical.
        prop_assert_eq!(reparsed.unwrap().to_string(), text);
    }

    #[test]
    fn malformed_lines_are_rejected_with_their_line_number(
        bad_sel in 0usize..12,
        insert_at in 0usize..5,
        noise in 0u64..u64::MAX,
    ) {
        const BAD: [&str; 12] = [
            "fault at 0s blackout for 0s",
            "fault at 0s timeout now",
            "at 0s intensity nope",
            "at 0s intensity -2",
            "at 0s mix festive",
            "at 0s level 9",
            "ramp 600s..0s intensity 1 -> 2",
            "sine 0s..9s intensity 1 amp 2 period 3s",
            "spike at 0s peak 2 rise 0s decay 0s",
            "fault at 0s stall db 10s",
            "fault at 0s noise 0 for 10s",
            "wibble 17",
        ];
        let good: [String; 4] = [
            format!("at {}s intensity 1.5", noise % 1000),
            "fault at 10s drop".to_string(),
            "at 20s level 2".to_string(),
            "drift 0s..60s mix shopping -> browsing".to_string(),
        ];
        // Header is 3 lines; directives follow. Insert the bad line
        // among `insert_at` good ones.
        let mut lines = vec![
            "name t".to_string(),
            "duration 6000s".to_string(),
            "interval 300s".to_string(),
        ];
        for g in good.iter().take(insert_at) {
            lines.push(g.clone());
        }
        let bad_line = lines.len() + 1; // 1-based
        lines.push(BAD[bad_sel].to_string());
        for g in good.iter().skip(insert_at) {
            lines.push(g.clone());
        }
        let src = format!("{}\n", lines.join("\n"));
        let e = Scenario::parse(&src).expect_err("malformed input must be rejected");
        prop_assert_eq!(e.line, bad_line, "wrong line in {:?} for:\n{}", e, src);
        prop_assert!(
            e.to_string().starts_with(&format!("line {bad_line}: ")),
            "message {:?} not line-prefixed", e.to_string()
        );
    }

    #[test]
    fn timelines_are_totally_ordered_with_unique_seq(
        dirs in proptest::collection::vec(
            ((0u64..u64::MAX, 0u64..7000, 1u64..4000), (0.001f64..50.0, 0.001f64..50.0)),
            1..16,
        ),
    ) {
        let scn = Scenario {
            name: "order".to_string(),
            duration: SimDuration::from_secs(7200),
            interval: SimDuration::from_secs(300),
            warmup: SimDuration::from_secs(0),
            clients: None,
            mix: Mix::Shopping,
            level: ResourceLevel::Level1,
            seed: None,
            directives: dirs
                .into_iter()
                .map(|((w, t, span), (a, b))| directive(w, t, span, a, b))
                .collect(),
        };
        let timeline = scn.compile();
        // Deterministic: compiling twice gives the same event list.
        prop_assert_eq!(&timeline, &scn.compile());
        let keys: Vec<(u64, u64)> = timeline
            .events()
            .iter()
            .map(|e| (e.t.as_micros(), e.seq))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&keys, &sorted, "timeline not (t, seq)-sorted");
        let mut seqs: Vec<u64> = timeline.events().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        prop_assert_eq!(seqs.len(), timeline.len(), "duplicate seq numbers");
        // Everything scheduled lies inside the measured run.
        for e in timeline.events() {
            prop_assert!(e.t < scn.duration);
        }
        // Intensity events only ever land on interval boundaries.
        for e in timeline.events() {
            if matches!(e.kind, EventKind::Intensity(_) | EventKind::MixBlend { .. }) {
                prop_assert_eq!(e.t.as_micros() % scn.interval.as_micros(), 0);
            }
        }
    }

    /// Satellite contract: no token soup — truncated lines, bad
    /// numbers, interleaved garbage — may ever panic the parser; every
    /// rejection is a `ParseError` whose line number points inside the
    /// source (or 0 for file-level problems).
    #[test]
    fn arbitrary_token_soup_never_panics(
        picks in proptest::collection::vec(
            proptest::collection::vec(0usize..44, 0..8),
            0..24,
        ),
        cut in 0usize..400,
    ) {
        const POOL: [&str; 44] = [
            "name", "duration", "interval", "warmup", "clients", "mix", "level",
            "seed", "at", "ramp", "sine", "spike", "drift", "fault", "stall",
            "noise", "outlier", "drop", "blackout", "timeout", "for", "->",
            "..", "intensity", "amp", "period", "peak", "rise", "decay", "web",
            "appdb", "300s", "0s", "-3s", "1.5", "NaN", "inf", "1e309", "0",
            "18446744073709551616", "us", "#", "0s..0s", "π≠",
        ];
        let mut src = picks
            .iter()
            .map(|line| {
                line.iter()
                    .map(|&i| POOL[i])
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .collect::<Vec<_>>()
            .join("\n");
        // Truncate mid-line at a char boundary to model a torn read.
        if let Some((pos, _)) = src.char_indices().nth(cut) {
            src.truncate(pos);
        }
        let line_count = src.lines().count();
        match Scenario::parse(&src) {
            Ok(scn) => {
                // Anything accepted must round-trip canonically.
                prop_assert_eq!(Scenario::parse(&scn.to_string()).as_ref(), Ok(&scn));
            }
            Err(e) => {
                prop_assert!(e.line <= line_count, "line {} of {line_count}:\n{src}", e.line);
                prop_assert!(!e.message.is_empty());
                if e.line > 0 {
                    prop_assert!(e.to_string().starts_with(&format!("line {}: ", e.line)));
                }
            }
        }
    }
}
