//! Line-oriented `.scn` parser and the canonical `Display` rendering.
//!
//! The grammar is deliberately small — one header key or one timeline
//! directive per line, `#` comments, blank lines ignored:
//!
//! ```text
//! name <word>                 (required)
//! duration <dur>              (required; total measured time)
//! interval <dur>              (required; measurement interval)
//! warmup <dur>                (default 600s)
//! clients <uint>              (optional base-population override)
//! mix <browsing|shopping|ordering>   (default shopping)
//! level <1|2|3>               (default 1)
//! seed <uint>                 (optional RNG-seed override)
//!
//! at <t> intensity <f>
//! at <t> mix <mix>
//! at <t> level <1|2|3>
//! ramp <t0>..<t1> intensity <f> -> <f>
//! sine <t0>..<t1> intensity <base> amp <f> period <dur>
//! spike at <t> peak <f> rise <dur> decay <dur>
//! drift <t0>..<t1> mix <mix> -> <mix>
//! fault at <t> stall <web|appdb> <dur>
//! fault at <t> noise <f> for <dur>
//! fault at <t> outlier <f>
//! fault at <t> drop
//! fault at <t> blackout for <dur>
//! fault at <t> timeout
//! tail at <t> think lognormal <sigma>
//! tail at <t> think off
//! tail at <t> service lognormal <sigma>
//! tail at <t> service off
//! ```
//!
//! Durations are written `<n>s` (seconds, fractional allowed) or
//! `<n>us` (integer microseconds). The canonical rendering emits whole
//! seconds as `Ns` and anything finer as `Nus`, so `Display` output
//! re-parses to an identical [`Scenario`] — a property the test suite
//! pins.
//!
//! Directives whose start time lands at or past `duration` parse fine
//! but compile to nothing ([`Scenario::compile`] drops events at or
//! past the end); [`Scenario::parse_with_warnings`] flags them with the
//! offending line number.

use std::fmt;

use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;

use crate::{Directive, Scenario, Tier};

/// A parse failure with the 1-based line it occurred on (line 0 for
/// file-level problems such as a missing required header).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line, or 0 for file-level errors.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            f.write_str(&self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// A non-fatal parser diagnostic with the 1-based line it refers to —
/// currently emitted for directives whose start time lands at or past
/// the scenario `duration` (their events are silently dropped by
/// [`Scenario::compile`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWarning {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Formats a duration canonically: whole seconds as `Ns`, otherwise
/// integer microseconds as `Nus`. Both forms re-parse exactly.
pub fn format_duration(d: SimDuration) -> String {
    let us = d.as_micros();
    if us.is_multiple_of(1_000_000) {
        format!("{}s", us / 1_000_000)
    } else {
        format!("{us}us")
    }
}

/// Parses a duration token (`300s`, `2.5s`, `1500us`).
pub fn parse_duration(tok: &str) -> Result<SimDuration, String> {
    let bad = || format!("invalid duration {tok:?} (expected e.g. 300s or 1500us)");
    if let Some(us) = tok.strip_suffix("us") {
        let us: u64 = us.parse().map_err(|_| bad())?;
        return Ok(SimDuration::from_micros(us));
    }
    if let Some(secs) = tok.strip_suffix('s') {
        let secs: f64 = secs.parse().map_err(|_| bad())?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(bad());
        }
        return Ok(SimDuration::from_secs_f64(secs));
    }
    Err(bad())
}

fn parse_f64(tok: &str, what: &str) -> Result<f64, String> {
    let v: f64 = tok
        .parse()
        .map_err(|_| format!("invalid {what} {tok:?} (expected a number)"))?;
    if !v.is_finite() {
        return Err(format!("{what} must be finite, got {tok:?}"));
    }
    Ok(v)
}

fn parse_positive(tok: &str, what: &str) -> Result<f64, String> {
    let v = parse_f64(tok, what)?;
    if v <= 0.0 {
        return Err(format!("{what} must be positive, got {tok:?}"));
    }
    Ok(v)
}

fn parse_mix(tok: &str) -> Result<Mix, String> {
    match tok {
        "browsing" => Ok(Mix::Browsing),
        "shopping" => Ok(Mix::Shopping),
        "ordering" => Ok(Mix::Ordering),
        _ => Err(format!(
            "unknown mix {tok:?} (expected browsing, shopping or ordering)"
        )),
    }
}

fn parse_level(tok: &str) -> Result<ResourceLevel, String> {
    match tok {
        "1" => Ok(ResourceLevel::Level1),
        "2" => Ok(ResourceLevel::Level2),
        "3" => Ok(ResourceLevel::Level3),
        _ => Err(format!("unknown level {tok:?} (expected 1, 2 or 3)")),
    }
}

fn level_digit(level: ResourceLevel) -> char {
    match level {
        ResourceLevel::Level1 => '1',
        ResourceLevel::Level2 => '2',
        ResourceLevel::Level3 => '3',
    }
}

fn parse_tier(tok: &str) -> Result<Tier, String> {
    match tok {
        "web" => Ok(Tier::Web),
        "appdb" => Ok(Tier::AppDb),
        _ => Err(format!("unknown tier {tok:?} (expected web or appdb)")),
    }
}

/// Parses a `t0..t1` range token; requires `t0 < t1`.
fn parse_range(tok: &str) -> Result<(SimDuration, SimDuration), String> {
    let (a, b) = tok
        .split_once("..")
        .ok_or_else(|| format!("invalid range {tok:?} (expected t0..t1)"))?;
    let t0 = parse_duration(a)?;
    let t1 = parse_duration(b)?;
    if t0 >= t1 {
        return Err(format!("range {tok:?} must satisfy t0 < t1"));
    }
    Ok((t0, t1))
}

/// Checks an exact token count, naming the directive on mismatch.
fn expect_len(tokens: &[&str], n: usize, usage: &str) -> Result<(), String> {
    if tokens.len() != n {
        return Err(format!("expected `{usage}`"));
    }
    Ok(())
}

fn expect_kw(tok: &str, kw: &str, usage: &str) -> Result<(), String> {
    if tok != kw {
        return Err(format!("expected `{usage}`"));
    }
    Ok(())
}

struct Header {
    name: Option<String>,
    duration: Option<SimDuration>,
    interval: Option<SimDuration>,
    warmup: Option<SimDuration>,
    clients: Option<usize>,
    mix: Option<Mix>,
    level: Option<ResourceLevel>,
    seed: Option<u64>,
}

impl Header {
    fn set<T>(slot: &mut Option<T>, value: T, key: &str) -> Result<(), String> {
        if slot.is_some() {
            return Err(format!("duplicate `{key}` header"));
        }
        *slot = Some(value);
        Ok(())
    }
}

impl Scenario {
    /// Parses a `.scn` source. Errors carry the 1-based line number.
    /// Warnings (see [`Scenario::parse_with_warnings`]) are discarded.
    pub fn parse(src: &str) -> Result<Scenario, ParseError> {
        Self::parse_with_warnings(src).map(|(scn, _)| scn)
    }

    /// Parses a `.scn` source, also returning non-fatal warnings: one
    /// per directive whose start time lands at or past `duration`
    /// (compilation drops its events, so the directive has no effect —
    /// almost always an authoring mistake).
    pub fn parse_with_warnings(src: &str) -> Result<(Scenario, Vec<ParseWarning>), ParseError> {
        let mut header = Header {
            name: None,
            duration: None,
            interval: None,
            warmup: None,
            clients: None,
            mix: None,
            level: None,
            seed: None,
        };
        // Directives keep their source line so start-past-duration
        // warnings can point at the offending line after the header is
        // resolved.
        let mut directives: Vec<(usize, Directive)> = Vec::new();

        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.split_once('#') {
                Some((before, _)) => before,
                None => raw,
            };
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens.is_empty() {
                continue;
            }
            let result: Result<(), String> = match tokens[0] {
                "name" => expect_len(&tokens, 2, "name <word>")
                    .and_then(|()| Header::set(&mut header.name, tokens[1].to_string(), "name")),
                "duration" => expect_len(&tokens, 2, "duration <dur>")
                    .and_then(|()| parse_duration(tokens[1]))
                    .and_then(|d| Header::set(&mut header.duration, d, "duration")),
                "interval" => expect_len(&tokens, 2, "interval <dur>")
                    .and_then(|()| parse_duration(tokens[1]))
                    .and_then(|d| Header::set(&mut header.interval, d, "interval")),
                "warmup" => expect_len(&tokens, 2, "warmup <dur>")
                    .and_then(|()| parse_duration(tokens[1]))
                    .and_then(|d| Header::set(&mut header.warmup, d, "warmup")),
                "clients" => expect_len(&tokens, 2, "clients <uint>")
                    .and_then(|()| {
                        tokens[1]
                            .parse::<usize>()
                            .map_err(|_| format!("invalid client count {:?}", tokens[1]))
                            .and_then(|n| {
                                if n == 0 {
                                    Err("client count must be positive".to_string())
                                } else {
                                    Ok(n)
                                }
                            })
                    })
                    .and_then(|n| Header::set(&mut header.clients, n, "clients")),
                "mix" => expect_len(&tokens, 2, "mix <mix>")
                    .and_then(|()| parse_mix(tokens[1]))
                    .and_then(|m| Header::set(&mut header.mix, m, "mix")),
                "level" => expect_len(&tokens, 2, "level <1|2|3>")
                    .and_then(|()| parse_level(tokens[1]))
                    .and_then(|l| Header::set(&mut header.level, l, "level")),
                "seed" => expect_len(&tokens, 2, "seed <uint>")
                    .and_then(|()| {
                        tokens[1]
                            .parse::<u64>()
                            .map_err(|_| format!("invalid seed {:?}", tokens[1]))
                    })
                    .and_then(|s| Header::set(&mut header.seed, s, "seed")),
                "at" | "ramp" | "sine" | "spike" | "drift" | "fault" | "tail" => {
                    parse_directive(&tokens).map(|d| directives.push((lineno, d)))
                }
                other => Err(format!("unknown keyword {other:?}")),
            };
            if let Err(message) = result {
                return err(lineno, message);
            }
        }

        let name = match header.name {
            Some(n) => n,
            None => return err(0, "missing required `name` header"),
        };
        let duration = match header.duration {
            Some(d) if !d.is_zero() => d,
            Some(_) => return err(0, "`duration` must be positive"),
            None => return err(0, "missing required `duration` header"),
        };
        let interval = match header.interval {
            Some(d) if !d.is_zero() => d,
            Some(_) => return err(0, "`interval` must be positive"),
            None => return err(0, "missing required `interval` header"),
        };
        if interval > duration {
            return err(0, "`interval` must not exceed `duration`");
        }

        let warnings = directives
            .iter()
            .filter(|(_, d)| d.start() >= duration)
            .map(|(line, d)| ParseWarning {
                line: *line,
                message: format!(
                    "directive starts at {} but `duration` is {}; \
                     events at or past the end are dropped, so it has no effect",
                    format_duration(d.start()),
                    format_duration(duration)
                ),
            })
            .collect();

        Ok((
            Scenario {
                name,
                duration,
                interval,
                warmup: header.warmup.unwrap_or(SimDuration::from_secs(600)),
                clients: header.clients,
                mix: header.mix.unwrap_or(Mix::Shopping),
                level: header.level.unwrap_or(ResourceLevel::Level1),
                seed: header.seed,
                directives: directives.into_iter().map(|(_, d)| d).collect(),
            },
            warnings,
        ))
    }
}

fn parse_directive(tokens: &[&str]) -> Result<Directive, String> {
    match tokens[0] {
        "at" => {
            if tokens.len() != 4 {
                return Err("expected `at <t> intensity|mix|level <value>`".to_string());
            }
            let t = parse_duration(tokens[1])?;
            match tokens[2] {
                "intensity" => Ok(Directive::IntensityAt {
                    t,
                    value: parse_positive(tokens[3], "intensity")?,
                }),
                "mix" => Ok(Directive::MixAt {
                    t,
                    mix: parse_mix(tokens[3])?,
                }),
                "level" => Ok(Directive::LevelAt {
                    t,
                    level: parse_level(tokens[3])?,
                }),
                other => Err(format!(
                    "unknown `at` target {other:?} (expected intensity, mix or level)"
                )),
            }
        }
        "ramp" => {
            let usage = "ramp <t0>..<t1> intensity <from> -> <to>";
            expect_len(tokens, 6, usage)?;
            expect_kw(tokens[2], "intensity", usage)?;
            expect_kw(tokens[4], "->", usage)?;
            let (t0, t1) = parse_range(tokens[1])?;
            Ok(Directive::IntensityRamp {
                t0,
                t1,
                from: parse_positive(tokens[3], "intensity")?,
                to: parse_positive(tokens[5], "intensity")?,
            })
        }
        "sine" => {
            let usage = "sine <t0>..<t1> intensity <base> amp <amp> period <dur>";
            expect_len(tokens, 8, usage)?;
            expect_kw(tokens[2], "intensity", usage)?;
            expect_kw(tokens[4], "amp", usage)?;
            expect_kw(tokens[6], "period", usage)?;
            let (t0, t1) = parse_range(tokens[1])?;
            let base = parse_positive(tokens[3], "intensity")?;
            let amp = parse_f64(tokens[5], "amplitude")?;
            if amp < 0.0 {
                return Err("amplitude must be non-negative".to_string());
            }
            if amp >= base {
                return Err("amplitude must be smaller than the base intensity".to_string());
            }
            let period = parse_duration(tokens[7])?;
            if period.is_zero() {
                return Err("period must be positive".to_string());
            }
            Ok(Directive::IntensitySine {
                t0,
                t1,
                base,
                amp,
                period,
            })
        }
        "spike" => {
            let usage = "spike at <t> peak <f> rise <dur> decay <dur>";
            expect_len(tokens, 9, usage)?;
            expect_kw(tokens[1], "at", usage)?;
            expect_kw(tokens[3], "peak", usage)?;
            expect_kw(tokens[5], "rise", usage)?;
            expect_kw(tokens[7], "decay", usage)?;
            let t = parse_duration(tokens[2])?;
            let peak = parse_positive(tokens[4], "peak intensity")?;
            let rise = parse_duration(tokens[6])?;
            let decay = parse_duration(tokens[8])?;
            if rise.is_zero() && decay.is_zero() {
                return Err("spike needs a positive rise or decay".to_string());
            }
            Ok(Directive::IntensitySpike {
                t,
                peak,
                rise,
                decay,
            })
        }
        "drift" => {
            let usage = "drift <t0>..<t1> mix <from> -> <to>";
            expect_len(tokens, 6, usage)?;
            expect_kw(tokens[2], "mix", usage)?;
            expect_kw(tokens[4], "->", usage)?;
            let (t0, t1) = parse_range(tokens[1])?;
            let from = parse_mix(tokens[3])?;
            let to = parse_mix(tokens[5])?;
            if from == to {
                return Err("drift endpoints must differ".to_string());
            }
            Ok(Directive::MixDrift { t0, t1, from, to })
        }
        "fault" => {
            if tokens.len() < 3 || tokens[1] != "at" {
                return Err("expected `fault at <t> stall|noise|outlier|drop ...`".to_string());
            }
            let t = parse_duration(tokens[2])?;
            match tokens.get(3).copied() {
                Some("stall") => {
                    expect_len(tokens, 6, "fault at <t> stall <web|appdb> <dur>")?;
                    let tier = parse_tier(tokens[4])?;
                    let dur = parse_duration(tokens[5])?;
                    if dur.is_zero() {
                        return Err("stall duration must be positive".to_string());
                    }
                    Ok(Directive::Stall { t, tier, dur })
                }
                Some("noise") => {
                    let usage = "fault at <t> noise <factor> for <dur>";
                    expect_len(tokens, 7, usage)?;
                    expect_kw(tokens[5], "for", usage)?;
                    let factor = parse_positive(tokens[4], "noise factor")?;
                    let dur = parse_duration(tokens[6])?;
                    if dur.is_zero() {
                        return Err("noise duration must be positive".to_string());
                    }
                    Ok(Directive::Noise { t, factor, dur })
                }
                Some("outlier") => {
                    expect_len(tokens, 5, "fault at <t> outlier <factor>")?;
                    Ok(Directive::Outlier {
                        t,
                        factor: parse_positive(tokens[4], "outlier factor")?,
                    })
                }
                Some("drop") => {
                    expect_len(tokens, 4, "fault at <t> drop")?;
                    Ok(Directive::Drop { t })
                }
                Some("blackout") => {
                    let usage = "fault at <t> blackout for <dur>";
                    expect_len(tokens, 6, usage)?;
                    expect_kw(tokens[4], "for", usage)?;
                    let dur = parse_duration(tokens[5])?;
                    if dur.is_zero() {
                        return Err("blackout duration must be positive".to_string());
                    }
                    Ok(Directive::Blackout { t, dur })
                }
                Some("timeout") => {
                    expect_len(tokens, 4, "fault at <t> timeout")?;
                    Ok(Directive::Timeout { t })
                }
                _ => Err(
                    "unknown fault (expected stall, noise, outlier, drop, blackout or timeout)"
                        .to_string(),
                ),
            }
        }
        "tail" => {
            let usage = "tail at <t> think|service lognormal <sigma> | off";
            if tokens.len() < 5 || tokens[1] != "at" {
                return Err(format!("expected `{usage}`"));
            }
            let t = parse_duration(tokens[2])?;
            let sigma = match tokens.get(4).copied() {
                Some("off") => {
                    expect_len(tokens, 5, usage)?;
                    None
                }
                Some("lognormal") => {
                    expect_len(tokens, 6, usage)?;
                    Some(parse_positive(tokens[5], "sigma")?)
                }
                _ => return Err(format!("expected `{usage}`")),
            };
            match tokens[3] {
                "think" => Ok(Directive::ThinkTail { t, sigma }),
                "service" => Ok(Directive::ServiceTail { t, sigma }),
                other => Err(format!(
                    "unknown tail target {other:?} (expected think or service)"
                )),
            }
        }
        _ => unreachable!("caller dispatches only directive keywords"),
    }
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = format_duration;
        match self {
            Directive::IntensityAt { t, value } => write!(f, "at {} intensity {value}", d(*t)),
            Directive::IntensityRamp { t0, t1, from, to } => {
                write!(f, "ramp {}..{} intensity {from} -> {to}", d(*t0), d(*t1))
            }
            Directive::IntensitySine {
                t0,
                t1,
                base,
                amp,
                period,
            } => write!(
                f,
                "sine {}..{} intensity {base} amp {amp} period {}",
                d(*t0),
                d(*t1),
                d(*period)
            ),
            Directive::IntensitySpike {
                t,
                peak,
                rise,
                decay,
            } => write!(
                f,
                "spike at {} peak {peak} rise {} decay {}",
                d(*t),
                d(*rise),
                d(*decay)
            ),
            Directive::MixAt { t, mix } => write!(f, "at {} mix {}", d(*t), mix.label()),
            Directive::MixDrift { t0, t1, from, to } => write!(
                f,
                "drift {}..{} mix {} -> {}",
                d(*t0),
                d(*t1),
                from.label(),
                to.label()
            ),
            Directive::LevelAt { t, level } => {
                write!(f, "at {} level {}", d(*t), level_digit(*level))
            }
            Directive::Stall { t, tier, dur } => {
                write!(f, "fault at {} stall {} {}", d(*t), tier.label(), d(*dur))
            }
            Directive::Noise { t, factor, dur } => {
                write!(f, "fault at {} noise {factor} for {}", d(*t), d(*dur))
            }
            Directive::Outlier { t, factor } => write!(f, "fault at {} outlier {factor}", d(*t)),
            Directive::Drop { t } => write!(f, "fault at {} drop", d(*t)),
            Directive::Blackout { t, dur } => {
                write!(f, "fault at {} blackout for {}", d(*t), d(*dur))
            }
            Directive::Timeout { t } => write!(f, "fault at {} timeout", d(*t)),
            Directive::ThinkTail { t, sigma } => match sigma {
                Some(s) => write!(f, "tail at {} think lognormal {s}", d(*t)),
                None => write!(f, "tail at {} think off", d(*t)),
            },
            Directive::ServiceTail { t, sigma } => match sigma {
                Some(s) => write!(f, "tail at {} service lognormal {s}", d(*t)),
                None => write!(f, "tail at {} service off", d(*t)),
            },
        }
    }
}

impl fmt::Display for Scenario {
    /// Canonical rendering; re-parses to an identical scenario.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "name {}", self.name)?;
        writeln!(f, "duration {}", format_duration(self.duration))?;
        writeln!(f, "interval {}", format_duration(self.interval))?;
        writeln!(f, "warmup {}", format_duration(self.warmup))?;
        if let Some(clients) = self.clients {
            writeln!(f, "clients {clients}")?;
        }
        writeln!(f, "mix {}", self.mix.label())?;
        writeln!(f, "level {}", level_digit(self.level))?;
        if let Some(seed) = self.seed {
            writeln!(f, "seed {seed}")?;
        }
        for d in &self.directives {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "name t\nduration 600s\ninterval 300s\n";

    #[test]
    fn minimal_scenario_defaults() {
        let scn = Scenario::parse(MINIMAL).unwrap();
        assert_eq!(scn.name, "t");
        assert_eq!(scn.warmup, SimDuration::from_secs(600));
        assert_eq!(scn.mix, Mix::Shopping);
        assert_eq!(scn.level, ResourceLevel::Level1);
        assert_eq!(scn.clients, None);
        assert_eq!(scn.seed, None);
        assert!(scn.directives.is_empty());
        assert_eq!(scn.iterations(), 2);
    }

    #[test]
    fn durations_parse_both_forms() {
        assert_eq!(parse_duration("300s").unwrap(), SimDuration::from_secs(300));
        assert_eq!(
            parse_duration("2.5s").unwrap(),
            SimDuration::from_micros(2_500_000)
        );
        assert_eq!(
            parse_duration("1500us").unwrap(),
            SimDuration::from_micros(1500)
        );
        assert!(parse_duration("300").is_err());
        assert!(parse_duration("-3s").is_err());
        assert!(parse_duration("3ms").is_err());
    }

    #[test]
    fn canonical_duration_round_trips() {
        for us in [0, 1, 999_999, 1_000_000, 90_000_000, 1_234_567] {
            let d = SimDuration::from_micros(us);
            assert_eq!(parse_duration(&format_duration(d)).unwrap(), d);
        }
    }

    #[test]
    fn every_directive_form_parses() {
        let src = "\
name all
duration 7200s
interval 300s
at 0s intensity 1.5
at 10s mix browsing
at 20s level 2
ramp 0s..600s intensity 1 -> 2
sine 0s..7200s intensity 1 amp 0.4 period 3600s
spike at 100s peak 3 rise 60s decay 300s
drift 0s..600s mix shopping -> ordering
fault at 30s stall appdb 120s
fault at 40s noise 1.5 for 300s
fault at 50s outlier 6
fault at 60s drop
fault at 70s blackout for 600s
fault at 80s timeout
tail at 90s think lognormal 1.2
tail at 95s think off
tail at 100s service lognormal 0.8
tail at 105s service off
";
        let scn = Scenario::parse(src).unwrap();
        assert_eq!(scn.directives.len(), 17);
        let again = Scenario::parse(&scn.to_string()).unwrap();
        assert_eq!(again, scn);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: [(&str, usize, &str); 15] = [
            (
                // Zero-length ramp: would divide by t1 - t0 == 0 at eval.
                "name t\nduration 600s\ninterval 300s\nramp 300s..300s intensity 1 -> 2\n",
                4,
                "t0 < t1",
            ),
            (
                // Zero-period sine: would divide by period == 0 at eval.
                "name t\nduration 600s\ninterval 300s\nsine 0s..600s intensity 2 amp 1 period 0s\n",
                4,
                "period must be positive",
            ),
            (
                "name t\nduration 600s\ninterval 300s\ntail at 0s think lognormal -1\n",
                4,
                "positive",
            ),
            (
                "name t\nduration 600s\ninterval 300s\ntail at 0s cpu lognormal 1\n",
                4,
                "unknown tail target",
            ),
            (
                "name t\nduration 600s\ninterval 300s\nfault at 0s blackout for 0s\n",
                4,
                "blackout duration",
            ),
            (
                "name t\nduration 600s\ninterval 300s\nfault at 0s timeout twice\n",
                4,
                "fault at <t> timeout",
            ),
            (
                "name t\nduration 600s\ninterval 300s\nfault at 0s brownout\n",
                4,
                "unknown fault",
            ),
            (
                "name t\nduration 600s\ninterval 300s\nat 0s intensity -1\n",
                4,
                "positive",
            ),
            ("name t\nbogus 1\n", 2, "unknown keyword"),
            (
                "name t\nduration 600s\ninterval 300s\nramp 600s..0s intensity 1 -> 2\n",
                4,
                "t0 < t1",
            ),
            (
                "name t\nduration 600s\ninterval 300s\nat 0s mix festive\n",
                4,
                "unknown mix",
            ),
            (
                "name t\nduration 600s\ninterval 300s\nfault at 0s stall db 10s\n",
                4,
                "unknown tier",
            ),
            ("name t\nname u\n", 2, "duplicate"),
            (
                "name t\nduration 600s\ninterval 300s\nsine 0s..9s intensity 1 amp 2 period 3s\n",
                4,
                "amplitude",
            ),
            (
                "name t\nduration 600s\ninterval 300s\ndrift 0s..9s mix shopping -> shopping\n",
                4,
                "differ",
            ),
        ];
        for (src, line, needle) in cases {
            let e = Scenario::parse(src).expect_err(src);
            assert_eq!(e.line, line, "{src:?} -> {e}");
            assert!(e.message.contains(needle), "{src:?} -> {e}");
            assert!(e.to_string().starts_with(&format!("line {line}: ")));
        }
    }

    #[test]
    fn file_level_errors_use_line_zero() {
        for (src, needle) in [
            ("duration 600s\ninterval 300s\n", "name"),
            ("name t\ninterval 300s\n", "duration"),
            ("name t\nduration 600s\n", "interval"),
            ("name t\nduration 300s\ninterval 600s\n", "exceed"),
            ("name t\nduration 600s\ninterval 0s\n", "positive"),
        ] {
            let e = Scenario::parse(src).expect_err(src);
            assert_eq!(e.line, 0, "{src:?} -> {e}");
            assert!(e.message.contains(needle), "{src:?} -> {e}");
            assert!(!e.to_string().starts_with("line"));
        }
    }

    #[test]
    fn warns_on_directives_at_or_past_duration() {
        let src = "\
name t
duration 1200s
interval 300s
fault at 1200s drop
at 900s intensity 2
ramp 1500s..1800s intensity 1 -> 2
";
        let (scn, warnings) = Scenario::parse_with_warnings(src).unwrap();
        // All three directives parse; two are flagged.
        assert_eq!(scn.directives.len(), 3);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert_eq!(warnings[0].line, 4);
        assert!(warnings[0].message.contains("1200s"), "{}", warnings[0]);
        assert_eq!(warnings[1].line, 6);
        assert!(warnings[1].to_string().starts_with("line 6: "));
    }

    #[test]
    fn no_warnings_for_in_range_directives() {
        for (_, src) in crate::bundled::all() {
            let (_, warnings) = Scenario::parse_with_warnings(src).unwrap();
            assert!(warnings.is_empty(), "{warnings:?}");
        }
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let src = "# header comment\n\nname t   # trailing\nduration 600s\n\ninterval 300s\n";
        let scn = Scenario::parse(src).unwrap();
        assert_eq!(scn.name, "t");
    }
}
