//! Seeded random scenario generation.
//!
//! [`generate`] composes the existing directive vocabulary — diurnal
//! sines, ramps, flash-crowd spikes, mix switches and drift, VM
//! reallocation, tier stalls, latency noise, measurement faults,
//! blackouts, and the heavy-tail `tail` directives — into a
//! [`Scenario`] drawn entirely from one `Pcg64` stream, so the result
//! is a pure function of `(seed, difficulty)`.
//!
//! Every generated scenario respects the parser's invariants (positive
//! intensities, `amp < base`, `t0 < t1`, positive periods and
//! durations, distinct drift endpoints) and starts every directive
//! strictly before `duration`, so it parses, `Display`-round-trips,
//! compiles to a totally ordered timeline, and produces no
//! [`crate::ParseWarning`]s — properties the test suite pins across
//! seeds.
//!
//! # Example
//!
//! ```
//! use scenario::{gen, Difficulty, Scenario};
//!
//! let scn = gen::generate(7, Difficulty::Stormy);
//! let again = Scenario::parse(&scn.to_string()).unwrap();
//! assert_eq!(again, scn); // round-trips through the parser
//! ```

use simkernel::{Pcg64, SimDuration};
use tpcw::Mix;
use vmstack::ResourceLevel;

use crate::{Directive, Scenario, Tier};

/// Measurement-interval length of every generated scenario.
pub const INTERVAL_S: u64 = 300;
/// Warm-up of every generated scenario (shorter than the 600 s default:
/// tournaments run hundreds of these).
pub const WARMUP_S: u64 = 300;

/// How rough a generated scenario is: scales the iteration count, the
/// number of faults, and the odds of spikes, drift, reallocation, and
/// heavy-tailed workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Difficulty {
    /// Gentle curves, at most one fault, rare tails.
    Calm,
    /// Moderate load dynamics plus a few faults.
    Brisk,
    /// Aggressive spikes, reallocation, fault barrages, frequent
    /// heavy-tailed regimes.
    Stormy,
}

impl Difficulty {
    /// All difficulties, mildest first.
    pub fn all() -> [Difficulty; 3] {
        [Difficulty::Calm, Difficulty::Brisk, Difficulty::Stormy]
    }

    /// Stable lowercase label (used in generated names and CLI flags).
    pub fn label(self) -> &'static str {
        match self {
            Difficulty::Calm => "calm",
            Difficulty::Brisk => "brisk",
            Difficulty::Stormy => "stormy",
        }
    }

    /// Looks a difficulty up by its label.
    pub fn by_name(name: &str) -> Option<Difficulty> {
        Self::all().into_iter().find(|d| d.label() == name)
    }

    /// Inclusive range of measurement iterations.
    fn iterations(self) -> (u64, u64) {
        match self {
            Difficulty::Calm => (8, 12),
            Difficulty::Brisk => (10, 15),
            Difficulty::Stormy => (12, 18),
        }
    }

    /// Inclusive range of offered clients. Even calm scenarios sit
    /// where configuration genuinely matters (cf. the MaxClients
    /// sweep: below ~80 clients every configuration coasts).
    fn clients(self) -> (u64, u64) {
        match self {
            Difficulty::Calm => (80, 200),
            Difficulty::Brisk => (150, 350),
            Difficulty::Stormy => (250, 450),
        }
    }

    /// Inclusive range of injected faults.
    fn faults(self) -> (u64, u64) {
        match self {
            Difficulty::Calm => (0, 1),
            Difficulty::Brisk => (1, 3),
            Difficulty::Stormy => (2, 5),
        }
    }

    /// Inclusive range of flash-crowd spikes.
    fn spikes(self) -> (u64, u64) {
        match self {
            Difficulty::Calm => (0, 1),
            Difficulty::Brisk => (0, 2),
            Difficulty::Stormy => (1, 3),
        }
    }

    /// Probability of a heavy-tail regime (per tail kind).
    fn tail_p(self) -> f64 {
        match self {
            Difficulty::Calm => 0.25,
            Difficulty::Brisk => 0.5,
            Difficulty::Stormy => 0.75,
        }
    }

    /// Probability of a mid-run VM reallocation.
    fn realloc_p(self) -> f64 {
        match self {
            Difficulty::Calm => 0.15,
            Difficulty::Brisk => 0.4,
            Difficulty::Stormy => 0.6,
        }
    }
}

const MIXES: [Mix; 3] = [Mix::Browsing, Mix::Shopping, Mix::Ordering];
const LEVELS: [ResourceLevel; 3] = [
    ResourceLevel::Level1,
    ResourceLevel::Level2,
    ResourceLevel::Level3,
];

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

/// Uniform f64 in `[lo, hi)`, rounded to 3 decimals so the canonical
/// `Display` form stays short and round-trips exactly.
fn uniform3(rng: &mut Pcg64, lo: f64, hi: f64) -> f64 {
    let x = lo + (hi - lo) * rng.f64();
    (x * 1000.0).round() / 1000.0
}

/// A random interval boundary in `[lo_iter, hi_iter] × INTERVAL_S`.
fn boundary(rng: &mut Pcg64, lo_iter: u64, hi_iter: u64) -> u64 {
    rng.range_inclusive(lo_iter, hi_iter) * INTERVAL_S
}

/// Generates a scenario from a seed and difficulty profile.
///
/// The result is deterministic, parser-clean (it `Display`-round-trips
/// and produces no warnings), and its timeline compiles with every
/// directive strictly inside `[0, duration)`.
pub fn generate(seed: u64, difficulty: Difficulty) -> Scenario {
    // Decorrelate the generator stream from direct uses of the seed
    // (the scenario's own `seed` header reuses the raw value).
    let mut rng = Pcg64::seed_from_u64(seed ^ 0x5CE7_A210_0E11_D00D);
    let (it_lo, it_hi) = difficulty.iterations();
    let iterations = rng.range_inclusive(it_lo, it_hi);
    let duration_s = iterations * INTERVAL_S;
    let mut directives: Vec<Directive> = Vec::new();

    // --- Base intensity curve: hold, ramp, diurnal sine, or steps. ---
    match rng.weighted_index(&[1.0, 2.0, 2.0, 2.0]) {
        0 => {} // hold at the implicit 1.0
        1 => {
            // One long ramp from t=0 to a mid-or-late boundary.
            let t1 = boundary(&mut rng, iterations / 2, iterations);
            let from = uniform3(&mut rng, 0.6, 1.2);
            let to = uniform3(&mut rng, 1.0, 2.2);
            directives.push(Directive::IntensityRamp {
                t0: secs(0),
                t1: secs(t1),
                from,
                to,
            });
        }
        2 => {
            // Diurnal sine across the whole run; amp strictly below
            // base by construction.
            let base = uniform3(&mut rng, 1.0, 1.6);
            let amp = uniform3(&mut rng, 0.2, (base - 0.15).min(0.9));
            let period = boundary(&mut rng, 2, iterations.max(3));
            directives.push(Directive::IntensitySine {
                t0: secs(0),
                t1: secs(duration_s),
                base,
                amp,
                period: secs(period),
            });
        }
        _ => {
            // 2–3 step changes at distinct interior boundaries.
            let steps = rng.range_inclusive(2, 3).min(iterations - 1);
            let mut ks: Vec<u64> = Vec::new();
            while (ks.len() as u64) < steps {
                let k = rng.range_inclusive(1, iterations - 1);
                if !ks.contains(&k) {
                    ks.push(k);
                }
            }
            ks.sort_unstable();
            for k in ks {
                directives.push(Directive::IntensityAt {
                    t: secs(k * INTERVAL_S),
                    value: uniform3(&mut rng, 0.5, 2.2),
                });
            }
        }
    }

    // --- Flash-crowd spikes riding on the base curve. ---
    let (sp_lo, sp_hi) = difficulty.spikes();
    for _ in 0..rng.range_inclusive(sp_lo, sp_hi) {
        let t = rng.range_inclusive(INTERVAL_S, duration_s - INTERVAL_S);
        directives.push(Directive::IntensitySpike {
            t: secs(t),
            peak: uniform3(&mut rng, 2.0, 3.5),
            rise: secs(rng.range_inclusive(30, 120)),
            decay: secs(rng.range_inclusive(120, 480)),
        });
    }

    // --- Mix dynamics: nothing, a hard switch, or gradual drift. ---
    let start_mix = MIXES[rng.below(3) as usize];
    match rng.weighted_index(&[2.0, 1.0, 1.0]) {
        0 => {}
        1 => {
            let mut to = MIXES[rng.below(3) as usize];
            if to == start_mix {
                to = MIXES[(MIXES.iter().position(|m| *m == to).unwrap() + 1) % 3];
            }
            directives.push(Directive::MixAt {
                t: secs(boundary(&mut rng, 1, iterations - 1)),
                mix: to,
            });
        }
        _ => {
            let mut to = MIXES[rng.below(3) as usize];
            if to == start_mix {
                to = MIXES[(MIXES.iter().position(|m| *m == to).unwrap() + 1) % 3];
            }
            let k0 = rng.range_inclusive(1, iterations - 1);
            let k1 = rng.range_inclusive(k0 + 1, iterations);
            directives.push(Directive::MixDrift {
                t0: secs(k0 * INTERVAL_S),
                t1: secs(k1 * INTERVAL_S),
                from: start_mix,
                to,
            });
        }
    }

    // --- VM reallocation. ---
    let start_level = LEVELS[rng.below(3) as usize];
    if rng.chance(difficulty.realloc_p()) {
        let mut level = LEVELS[rng.below(3) as usize];
        if level == start_level {
            level = LEVELS[(LEVELS.iter().position(|l| *l == level).unwrap() + 1) % 3];
        }
        directives.push(Directive::LevelAt {
            t: secs(boundary(&mut rng, 1, iterations - 1)),
            level,
        });
    }

    // --- Faults. ---
    let (f_lo, f_hi) = difficulty.faults();
    for _ in 0..rng.range_inclusive(f_lo, f_hi) {
        let t = secs(rng.range_inclusive(0, duration_s - 60));
        let kind = match difficulty {
            // Stormy leans on the hard faults (stall/blackout).
            Difficulty::Stormy => rng.weighted_index(&[3.0, 2.0, 2.0, 2.0, 3.0, 2.0]),
            _ => rng.weighted_index(&[2.0, 2.0, 2.0, 2.0, 1.0, 2.0]),
        };
        directives.push(match kind {
            0 => Directive::Stall {
                t,
                tier: if rng.chance(0.5) {
                    Tier::Web
                } else {
                    Tier::AppDb
                },
                dur: secs(rng.range_inclusive(60, 240)),
            },
            1 => Directive::Noise {
                t,
                factor: uniform3(&mut rng, 1.2, 2.5),
                dur: secs(rng.range_inclusive(120, 600)),
            },
            2 => Directive::Outlier {
                t,
                factor: uniform3(&mut rng, 3.0, 8.0),
            },
            3 => Directive::Drop { t },
            4 => Directive::Blackout {
                t,
                dur: secs(rng.range_inclusive(120, 600)),
            },
            _ => Directive::Timeout { t },
        });
    }

    // --- Heavy-tailed workload regimes. ---
    if rng.chance(difficulty.tail_p()) {
        let k = rng.range_inclusive(0, iterations - 1);
        directives.push(Directive::ThinkTail {
            t: secs(k * INTERVAL_S),
            sigma: Some(uniform3(&mut rng, 0.5, 1.5)),
        });
        // Sometimes switch back to the exponential default later.
        if k + 1 < iterations && rng.chance(0.5) {
            directives.push(Directive::ThinkTail {
                t: secs(boundary(&mut rng, k + 1, iterations - 1)),
                sigma: None,
            });
        }
    }
    if rng.chance(difficulty.tail_p()) {
        let k = rng.range_inclusive(0, iterations - 1);
        directives.push(Directive::ServiceTail {
            t: secs(k * INTERVAL_S),
            sigma: Some(uniform3(&mut rng, 0.5, 1.5)),
        });
        if k + 1 < iterations && rng.chance(0.5) {
            directives.push(Directive::ServiceTail {
                t: secs(boundary(&mut rng, k + 1, iterations - 1)),
                sigma: None,
            });
        }
    }

    Scenario {
        name: format!("gen-{}-{seed}", difficulty.label()),
        duration: secs(duration_s),
        interval: secs(INTERVAL_S),
        warmup: secs(WARMUP_S),
        clients: {
            let (c_lo, c_hi) = difficulty.clients();
            Some(rng.range_inclusive(c_lo, c_hi) as usize)
        },
        mix: start_mix,
        level: start_level,
        seed: Some(seed),
        directives,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for d in Difficulty::all() {
            assert_eq!(generate(42, d), generate(42, d));
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let a = generate(1, Difficulty::Brisk);
        let b = generate(2, Difficulty::Brisk);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn difficulty_lookup() {
        assert_eq!(Difficulty::by_name("calm"), Some(Difficulty::Calm));
        assert_eq!(Difficulty::by_name("stormy"), Some(Difficulty::Stormy));
        assert_eq!(Difficulty::by_name("impossible"), None);
    }

    #[test]
    fn generated_scenarios_are_parser_clean() {
        for seed in 0..50u64 {
            for d in Difficulty::all() {
                let scn = generate(seed, d);
                let rendered = scn.to_string();
                let (again, warnings) = Scenario::parse_with_warnings(&rendered)
                    .unwrap_or_else(|e| panic!("seed {seed} {d:?}: {e}\n{rendered}"));
                assert_eq!(again, scn, "seed {seed} {d:?} does not round-trip");
                assert!(
                    warnings.is_empty(),
                    "seed {seed} {d:?} warns: {warnings:?}\n{rendered}"
                );
            }
        }
    }

    #[test]
    fn stormy_is_rougher_than_calm_on_average() {
        let count =
            |d: Difficulty| -> usize { (0..100u64).map(|s| generate(s, d).directives.len()).sum() };
        assert!(count(Difficulty::Stormy) > count(Difficulty::Calm));
    }
}
