//! Scriptable time-varying workload and fault-injection scenarios.
//!
//! The paper evaluates RAC only under step changes between fixed system
//! contexts. This crate extends the testbed beyond those clean steps: a
//! *scenario* schedules events in simulated time against a running
//! experiment — workload-intensity curves (piecewise-linear ramps,
//! sinusoidal diurnal cycles, flash-crowd spikes), gradual TPC-W mix
//! drift, VM reallocation, and fault injections (tier stalls, latency
//! noise, measurement corruption, dropped intervals).
//!
//! Scenarios are authored in a small line-oriented text format (see
//! [`Scenario::parse`] and `scenarios/*.scn` at the repository root) and
//! compiled into a sorted [`Timeline`] of discrete events with
//! deterministic tie-breaking, mirroring `simkernel`'s event-queue
//! discipline. The experiment driver (`rac::Experiment::run_scenario`)
//! applies each event at the boundary of the measurement interval that
//! contains it, so a scenario run is a pure function of
//! (spec, scenario, seed) — bit-identical at any `RAC_THREADS`.
//!
//! # Example
//!
//! ```
//! use scenario::Scenario;
//!
//! let src = "\
//! name demo
//! duration 600s
//! interval 300s
//! ramp 0s..600s intensity 1 -> 2
//! ";
//! let scn = Scenario::parse(src).unwrap();
//! assert_eq!(scn.iterations(), 2);
//! let timeline = scn.compile();
//! assert!(!timeline.is_empty());
//! // Display round-trips through the parser.
//! assert_eq!(Scenario::parse(&scn.to_string()).unwrap(), scn);
//! ```

pub mod gen;
pub mod parse;
pub mod timeline;

use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;

pub use gen::Difficulty;
pub use parse::{ParseError, ParseWarning};
pub use timeline::{EventKind, TimedEvent, Timeline};

/// A tier of the three-tier system, as targeted by fault injection.
/// (The web tier runs Apache; the app/db tier runs Tomcat + MySQL on
/// the reallocatable VM.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The web (Apache) VM.
    Web,
    /// The app/db (Tomcat + MySQL) VM.
    AppDb,
}

impl Tier {
    /// The `.scn` keyword for this tier.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Web => "web",
            Tier::AppDb => "appdb",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One timeline directive, as authored in a `.scn` file.
///
/// Times are offsets from the start of the measured run (warm-up
/// excluded). Intensity directives describe an *absolute* multiplier on
/// the scenario's base client population; where several overlap, the
/// one declared last wins (a spike overlays the curve beneath it).
#[derive(Debug, Clone, PartialEq)]
pub enum Directive {
    /// `at <t> intensity <v>` — step the intensity to `value`.
    IntensityAt {
        /// When the step applies.
        t: SimDuration,
        /// New intensity multiplier.
        value: f64,
    },
    /// `ramp <t0>..<t1> intensity <from> -> <to>` — piecewise-linear
    /// ramp; holds `to` after `t1`.
    IntensityRamp {
        /// Ramp start.
        t0: SimDuration,
        /// Ramp end.
        t1: SimDuration,
        /// Intensity at `t0`.
        from: f64,
        /// Intensity at `t1` (held afterwards).
        to: f64,
    },
    /// `sine <t0>..<t1> intensity <base> amp <amp> period <p>` —
    /// sinusoidal (diurnal) cycle around `base`; holds `base` after
    /// `t1`.
    IntensitySine {
        /// Cycle start.
        t0: SimDuration,
        /// Cycle end.
        t1: SimDuration,
        /// Mean intensity.
        base: f64,
        /// Peak deviation from `base`.
        amp: f64,
        /// Period of one full cycle.
        period: SimDuration,
    },
    /// `spike at <t> peak <v> rise <r> decay <d>` — flash crowd: a
    /// linear rise to `peak` over `rise`, then a linear decay back to
    /// whatever the underlying curve prescribes, over `decay`.
    IntensitySpike {
        /// Spike onset.
        t: SimDuration,
        /// Peak intensity multiplier.
        peak: f64,
        /// Rise time (0 = instantaneous).
        rise: SimDuration,
        /// Decay time back to the underlying curve.
        decay: SimDuration,
    },
    /// `at <t> mix <mix>` — hard mix switch (sessions restart).
    MixAt {
        /// When the switch applies.
        t: SimDuration,
        /// The new mix.
        mix: Mix,
    },
    /// `drift <t0>..<t1> mix <from> -> <to>` — gradual drift: the
    /// fleet's transition matrix is interpolated between the two mixes,
    /// preserving sessions.
    MixDrift {
        /// Drift start.
        t0: SimDuration,
        /// Drift end (fully `to` afterwards).
        t1: SimDuration,
        /// Starting mix.
        from: Mix,
        /// Final mix.
        to: Mix,
    },
    /// `at <t> level <1|2|3>` — VM reallocation of the app/db tier.
    LevelAt {
        /// When the reallocation applies.
        t: SimDuration,
        /// The new resource level.
        level: ResourceLevel,
    },
    /// `fault at <t> stall <tier> <dur>` — the tier's CPU freezes for
    /// `dur` of simulated time, then recovers.
    Stall {
        /// Stall onset.
        t: SimDuration,
        /// Which tier stalls.
        tier: Tier,
        /// Stall duration.
        dur: SimDuration,
    },
    /// `fault at <t> noise <factor> for <dur>` — multiplicative latency
    /// noise: every service demand is scaled by `factor` for `dur`.
    Noise {
        /// Noise onset.
        t: SimDuration,
        /// Demand multiplier (> 0; 1.0 is a no-op).
        factor: f64,
        /// How long the noise lasts.
        dur: SimDuration,
    },
    /// `fault at <t> outlier <factor>` — the measurement of the
    /// interval containing `t` is corrupted: reported response times
    /// are multiplied by `factor` (the system itself is unaffected).
    Outlier {
        /// Which interval's measurement to corrupt.
        t: SimDuration,
        /// Corruption multiplier (> 0).
        factor: f64,
    },
    /// `fault at <t> drop` — the measurement of the interval containing
    /// `t` is lost entirely (the tuner sees an empty sample).
    Drop {
        /// Which interval's measurement to drop.
        t: SimDuration,
    },
    /// `fault at <t> blackout for <dur>` — total measurement outage:
    /// every sample acquisition in `[t, t+dur)` fails, defeating the
    /// measurement channel's retry budget (the system itself keeps
    /// running).
    Blackout {
        /// Outage onset.
        t: SimDuration,
        /// How long acquisitions keep failing.
        dur: SimDuration,
    },
    /// `fault at <t> timeout` — the sample acquisition for the interval
    /// containing `t` times out once; a retry succeeds if the
    /// measurement channel still has retry budget.
    Timeout {
        /// Which interval's acquisition times out.
        t: SimDuration,
    },
    /// `tail at <t> think lognormal <sigma>` / `tail at <t> think off` —
    /// switch browser think times to a heavy-tailed log-normal of the
    /// same mean (σ controls tail weight) or back to the bit-exact
    /// exponential default.
    ThinkTail {
        /// When the switch applies.
        t: SimDuration,
        /// Log-normal σ, or `None` for the exponential default.
        sigma: Option<f64>,
    },
    /// `tail at <t> service lognormal <sigma>` / `tail at <t> service
    /// off` — multiply every request's service demands by a mean-1
    /// log-normal jitter (σ controls tail weight) or restore the
    /// bit-exact deterministic default.
    ServiceTail {
        /// When the switch applies.
        t: SimDuration,
        /// Log-normal σ, or `None` for no jitter.
        sigma: Option<f64>,
    },
}

impl Directive {
    /// The directive's start time — `t` for point directives, `t0` for
    /// windowed ones. Used by the parser to warn about directives that
    /// start at or past the scenario `duration` (which
    /// [`Scenario::compile`] drops).
    pub fn start(&self) -> SimDuration {
        match self {
            Directive::IntensityAt { t, .. }
            | Directive::IntensitySpike { t, .. }
            | Directive::MixAt { t, .. }
            | Directive::LevelAt { t, .. }
            | Directive::Stall { t, .. }
            | Directive::Noise { t, .. }
            | Directive::Outlier { t, .. }
            | Directive::Drop { t }
            | Directive::Blackout { t, .. }
            | Directive::Timeout { t }
            | Directive::ThinkTail { t, .. }
            | Directive::ServiceTail { t, .. } => *t,
            Directive::IntensityRamp { t0, .. }
            | Directive::IntensitySine { t0, .. }
            | Directive::MixDrift { t0, .. } => *t0,
        }
    }
}

/// A parsed scenario: header (name, clock, base workload) plus timeline
/// directives. Build one with [`Scenario::parse`]; [`Scenario::compile`]
/// turns it into a discrete [`Timeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (used for output file names).
    pub name: String,
    /// Total measured simulated time (warm-up excluded).
    pub duration: SimDuration,
    /// Measurement-interval length; curves are sampled at interval
    /// boundaries.
    pub interval: SimDuration,
    /// Warm-up run before the first measured interval (default 600 s).
    pub warmup: SimDuration,
    /// Base client population (overrides the experiment spec when set).
    pub clients: Option<usize>,
    /// Starting traffic mix (default shopping).
    pub mix: Mix,
    /// Starting app/db resource level (default Level 1).
    pub level: ResourceLevel,
    /// RNG seed override for the run.
    pub seed: Option<u64>,
    /// Timeline directives in declaration order.
    pub directives: Vec<Directive>,
}

impl Scenario {
    /// Number of measurement iterations the scenario spans
    /// (`duration / interval`, rounded down; at least 1 by parser
    /// validation).
    pub fn iterations(&self) -> usize {
        (self.duration.as_micros() / self.interval.as_micros()) as usize
    }

    /// Returns a copy with every time (duration, interval, warm-up, and
    /// all directive times) scaled by `num/den` — the whole timeline
    /// keeps its shape relative to the interval grid. Used by the quick
    /// figure mode.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or scaling collapses the interval to
    /// zero.
    pub fn scaled(&self, num: u64, den: u64) -> Scenario {
        assert!(den > 0, "scale denominator must be positive");
        let scale = |d: SimDuration| SimDuration::from_micros(d.as_micros() * num / den);
        let mut out = self.clone();
        out.duration = scale(out.duration);
        out.interval = scale(out.interval);
        out.warmup = scale(out.warmup);
        assert!(!out.interval.is_zero(), "scaled interval must be positive");
        for d in &mut out.directives {
            match d {
                Directive::IntensityAt { t, .. }
                | Directive::MixAt { t, .. }
                | Directive::LevelAt { t, .. }
                | Directive::Outlier { t, .. }
                | Directive::Drop { t }
                | Directive::Timeout { t }
                | Directive::ThinkTail { t, .. }
                | Directive::ServiceTail { t, .. } => *t = scale(*t),
                Directive::IntensityRamp { t0, t1, .. } | Directive::MixDrift { t0, t1, .. } => {
                    *t0 = scale(*t0);
                    *t1 = scale(*t1);
                    assert!(*t0 < *t1, "scaled range must keep t0 < t1");
                }
                Directive::IntensitySine { t0, t1, period, .. } => {
                    *t0 = scale(*t0);
                    *t1 = scale(*t1);
                    *period = scale(*period);
                    assert!(*t0 < *t1, "scaled range must keep t0 < t1");
                    assert!(!period.is_zero(), "scaled sine period must be positive");
                }
                Directive::IntensitySpike { t, rise, decay, .. } => {
                    *t = scale(*t);
                    *rise = scale(*rise);
                    *decay = scale(*decay);
                }
                Directive::Stall { t, dur, .. }
                | Directive::Noise { t, dur, .. }
                | Directive::Blackout { t, dur } => {
                    *t = scale(*t);
                    *dur = scale(*dur);
                }
            }
        }
        out
    }

    /// A 64-bit FNV-1a fingerprint of the scenario's canonical text
    /// form. `Display` round-trips losslessly through the parser, so
    /// two scenarios fingerprint equal exactly when every header and
    /// directive matches — which is what checkpoint files record to
    /// refuse resuming against a different timeline.
    ///
    /// # Example
    ///
    /// ```
    /// use scenario::Scenario;
    ///
    /// let a = Scenario::parse("name x\nduration 600s\ninterval 300s\n").unwrap();
    /// assert_eq!(a.fingerprint(), a.clone().fingerprint());
    /// assert_ne!(a.fingerprint(), a.scaled(1, 2).fingerprint());
    /// ```
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in self.to_string().bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// The client population offered during each measurement iteration,
    /// given a base population — the intensity curve replayed over the
    /// interval grid. Useful for annotating figure CSVs.
    pub fn offered_clients(&self, base_clients: usize) -> Vec<usize> {
        let timeline = self.compile();
        let mut intensity = 1.0;
        let mut idx = 0;
        let mut out = Vec::with_capacity(self.iterations());
        for k in 0..self.iterations() {
            let start = SimDuration::from_micros(k as u64 * self.interval.as_micros());
            while let Some(ev) = timeline.events().get(idx) {
                if ev.t > start {
                    break;
                }
                if let EventKind::Intensity(v) = ev.kind {
                    intensity = v;
                }
                idx += 1;
            }
            out.push((((base_clients as f64) * intensity).round() as usize).max(1));
        }
        out
    }
}

/// The three scenarios bundled with the repository (`scenarios/*.scn`),
/// embedded so binaries and tests resolve them regardless of the
/// working directory.
pub mod bundled {
    /// Sinusoidal diurnal load cycle with a gradual mix drift.
    pub const DIURNAL: &str = include_str!("../../../scenarios/diurnal.scn");
    /// Flash crowd: sudden spike to ~2.75× load with slow decay.
    pub const FLASH_CROWD: &str = include_str!("../../../scenarios/flash-crowd.scn");
    /// Degradation: VM downgrade, tier stall, measurement faults.
    pub const DEGRADE: &str = include_str!("../../../scenarios/degrade.scn");

    /// All bundled scenarios as `(name, source)` pairs.
    pub fn all() -> [(&'static str, &'static str); 3] {
        [
            ("diurnal", DIURNAL),
            ("flash-crowd", FLASH_CROWD),
            ("degrade", DEGRADE),
        ]
    }

    /// Looks a bundled scenario up by name.
    pub fn by_name(name: &str) -> Option<&'static str> {
        all()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, src)| src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_scenarios_parse_and_compile() {
        for (name, src) in bundled::all() {
            let scn = Scenario::parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(scn.name, name);
            assert!(scn.iterations() >= 10, "{name} too short");
            let timeline = scn.compile();
            assert!(!timeline.is_empty(), "{name} compiles to no events");
            // Round trip through Display.
            let again = Scenario::parse(&scn.to_string()).unwrap();
            assert_eq!(again, scn, "{name} does not round-trip");
        }
    }

    #[test]
    fn bundled_lookup() {
        assert!(bundled::by_name("diurnal").is_some());
        assert!(bundled::by_name("nope").is_none());
    }

    #[test]
    fn scaled_preserves_iteration_count() {
        for (_, src) in bundled::all() {
            let scn = Scenario::parse(src).unwrap();
            let scaled = scn.scaled(1, 3);
            assert_eq!(scaled.iterations(), scn.iterations());
        }
    }

    #[test]
    fn offered_clients_follows_intensity() {
        let src = "\
name t
duration 900s
interval 300s
at 300s intensity 2
";
        let scn = Scenario::parse(src).unwrap();
        assert_eq!(scn.offered_clients(100), vec![100, 200, 200]);
    }

    #[test]
    #[should_panic(expected = "scaled interval must be positive")]
    fn collapsing_scale_panics() {
        let scn = Scenario::parse(bundled::DIURNAL).unwrap();
        let _ = scn.scaled(0, 1);
    }
}
