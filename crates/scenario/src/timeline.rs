//! Compilation of a [`Scenario`] into a sorted, discrete event
//! timeline.
//!
//! Continuous directives (ramps, sine cycles, spikes, mix drift) are
//! sampled at measurement-interval boundaries — the only instants the
//! experiment driver can act on — while discrete directives (steps,
//! faults) keep their authored times and are applied at the boundary of
//! the interval that contains them. Every event carries a globally
//! unique sequence number assigned in a fixed two-pass order
//! (declaration-ordered discrete events first, then the intensity
//! boundary sweep), and the final timeline is stably sorted by
//! `(t, seq)` — mirroring `simkernel`'s event-queue discipline, so two
//! compilations of the same scenario are identical and ties break the
//! same way everywhere.

use std::fmt;

use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;

use crate::parse::format_duration;
use crate::{Directive, Scenario, Tier};

/// What a timeline event does when applied to the running system.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Scale the offered client population to `base × value`.
    Intensity(f64),
    /// Hard-switch the traffic mix (sessions restart).
    MixStep(Mix),
    /// Blend the transition matrix `frac` of the way from `from` to
    /// `to` (sessions survive).
    MixBlend {
        /// Starting mix.
        from: Mix,
        /// Target mix.
        to: Mix,
        /// Interpolation fraction in `[0, 1]`.
        frac: f64,
    },
    /// Reallocate the app/db VM to this level.
    Level(ResourceLevel),
    /// Freeze a tier's CPU for the given duration.
    Stall {
        /// Which tier stalls.
        tier: Tier,
        /// How long it stays frozen.
        dur: SimDuration,
    },
    /// Multiply all service demands by this factor (1.0 restores).
    Noise(f64),
    /// Corrupt the next measurement: response times × this factor.
    Outlier(f64),
    /// Drop the next measurement entirely.
    Drop,
    /// Start (`true`) or lift (`false`) a measurement blackout: while
    /// active, every sample acquisition fails regardless of retries.
    Blackout(bool),
    /// Time the next sample acquisition out once; the measurement
    /// channel may recover it by retrying.
    Timeout,
    /// Switch browser think times to a mean-preserving log-normal with
    /// this σ, or back to the exponential default (`None`).
    ThinkTail(Option<f64>),
    /// Apply mean-1 log-normal jitter with this σ to every request's
    /// service demands, or restore the deterministic default (`None`).
    ServiceTail(Option<f64>),
}

impl EventKind {
    /// Stable event-type label, used in traces and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Intensity(_) => "intensity",
            EventKind::MixStep(_) => "mix",
            EventKind::MixBlend { .. } => "mix_blend",
            EventKind::Level(_) => "level",
            EventKind::Stall { .. } => "stall",
            EventKind::Noise(_) => "noise",
            EventKind::Outlier(_) => "outlier",
            EventKind::Drop => "drop",
            EventKind::Blackout(_) => "blackout",
            EventKind::Timeout => "timeout",
            EventKind::ThinkTail(_) => "think_tail",
            EventKind::ServiceTail(_) => "service_tail",
        }
    }
}

impl fmt::Display for EventKind {
    /// Compact payload rendering, used as the `detail` trace field.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Intensity(v) => write!(f, "x{v:.4}"),
            EventKind::MixStep(mix) => f.write_str(mix.label()),
            EventKind::MixBlend { from, to, frac } => {
                write!(f, "{}->{} frac={frac:.3}", from.label(), to.label())
            }
            EventKind::Level(level) => f.write_str(level.label()),
            EventKind::Stall { tier, dur } => {
                write!(f, "{} for {}", tier.label(), format_duration(*dur))
            }
            EventKind::Noise(factor) => write!(f, "x{factor:.3}"),
            EventKind::Outlier(factor) => write!(f, "x{factor:.3}"),
            EventKind::Drop => f.write_str("interval dropped"),
            EventKind::Blackout(true) => f.write_str("outage begins"),
            EventKind::Blackout(false) => f.write_str("outage lifted"),
            EventKind::Timeout => f.write_str("acquisition timed out"),
            EventKind::ThinkTail(Some(s)) | EventKind::ServiceTail(Some(s)) => {
                write!(f, "lognormal s={s:.3}")
            }
            EventKind::ThinkTail(None) => f.write_str("exponential"),
            EventKind::ServiceTail(None) => f.write_str("deterministic"),
        }
    }
}

/// One scheduled event: a time offset from the start of the measured
/// run, a unique sequence number for tie-breaking, and the action.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Offset from the start of the measured run.
    pub t: SimDuration,
    /// Globally unique tie-breaker; assignment order is deterministic.
    pub seq: u64,
    /// The action to apply.
    pub kind: EventKind,
}

/// A compiled scenario: events sorted by `(t, seq)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Timeline {
    events: Vec<TimedEvent>,
}

impl Timeline {
    /// The events in application order.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Evaluates the intensity curve defined by `dirs` at time `t`.
///
/// Directives layer: the last declared directive covering `t` wins. A
/// spike covers only its own `[t, t+rise+decay]` window and blends with
/// whatever the directives *below* it prescribe — so a flash crowd
/// rides on top of a diurnal cycle and hands back to it on decay.
/// With no covering directive the intensity is 1.0.
fn intensity_at(dirs: &[Directive], t: SimDuration) -> f64 {
    let t_us = t.as_micros();
    for (i, d) in dirs.iter().enumerate().rev() {
        match d {
            Directive::IntensityAt { t: start, value } if t >= *start => return *value,
            Directive::IntensityRamp { t0, t1, from, to } if t >= *t0 => {
                if t >= *t1 {
                    return *to;
                }
                let frac =
                    (t_us - t0.as_micros()) as f64 / (t1.as_micros() - t0.as_micros()) as f64;
                return from + (to - from) * frac;
            }
            Directive::IntensitySine {
                t0,
                t1,
                base,
                amp,
                period,
            } if t >= *t0 => {
                // The parser rejects `period 0s`, but a directly
                // constructed (or pathologically scaled) sine must not
                // divide by zero — hold the base instead.
                if t > *t1 || period.is_zero() {
                    return *base;
                }
                let phase = (t_us - t0.as_micros()) as f64 / period.as_micros() as f64;
                return base + amp * (std::f64::consts::TAU * phase).sin();
            }
            Directive::IntensitySpike {
                t: start,
                peak,
                rise,
                decay,
            } => {
                let end_us = start.as_micros() + rise.as_micros() + decay.as_micros();
                if t >= *start && t_us <= end_us {
                    let below = intensity_at(&dirs[..i], t);
                    let x_us = t_us - start.as_micros();
                    if x_us < rise.as_micros() {
                        let frac = x_us as f64 / rise.as_micros() as f64;
                        return below + (peak - below) * frac;
                    }
                    if decay.is_zero() {
                        return *peak;
                    }
                    let frac = (x_us - rise.as_micros()) as f64 / decay.as_micros() as f64;
                    return peak + (below - peak) * frac;
                }
            }
            _ => {}
        }
    }
    1.0
}

impl Scenario {
    /// Compiles the scenario into a sorted event timeline.
    ///
    /// **Boundary contract:** events at or past `duration` are dropped —
    /// `t == duration` is already outside the measured run (the last
    /// interval ends there, so nothing could apply the event). The
    /// parser flags directives that start in that dead zone via
    /// [`Scenario::parse_with_warnings`].
    pub fn compile(&self) -> Timeline {
        let mut events: Vec<TimedEvent> = Vec::new();
        let mut seq: u64 = 0;
        let mut push = |events: &mut Vec<TimedEvent>, t: SimDuration, kind: EventKind| {
            if t < self.duration {
                events.push(TimedEvent { t, seq, kind });
            }
            seq += 1;
        };
        let boundaries: Vec<SimDuration> = (0..self.iterations() as u64)
            .map(|k| SimDuration::from_micros(k * self.interval.as_micros()))
            .collect();

        // Pass 1: discrete directives and drift sampling, in
        // declaration order.
        for d in &self.directives {
            match d {
                Directive::MixAt { t, mix } => {
                    push(&mut events, *t, EventKind::MixStep(*mix));
                }
                Directive::MixDrift { t0, t1, from, to } => {
                    let span_us = (t1.as_micros() - t0.as_micros()) as f64;
                    for &b in boundaries.iter().filter(|b| **b >= *t0) {
                        // Guard a directly constructed zero-span drift
                        // (the parser requires t0 < t1): jump straight
                        // to the final mix instead of computing 0/0.
                        let frac = if span_us > 0.0 {
                            ((b.as_micros() - t0.as_micros()) as f64 / span_us).min(1.0)
                        } else {
                            1.0
                        };
                        push(
                            &mut events,
                            b,
                            EventKind::MixBlend {
                                from: *from,
                                to: *to,
                                frac,
                            },
                        );
                        if frac >= 1.0 {
                            break;
                        }
                    }
                }
                Directive::LevelAt { t, level } => {
                    push(&mut events, *t, EventKind::Level(*level));
                }
                Directive::Stall { t, tier, dur } => {
                    push(
                        &mut events,
                        *t,
                        EventKind::Stall {
                            tier: *tier,
                            dur: *dur,
                        },
                    );
                }
                Directive::Noise { t, factor, dur } => {
                    push(&mut events, *t, EventKind::Noise(*factor));
                    push(
                        &mut events,
                        SimDuration::from_micros(t.as_micros() + dur.as_micros()),
                        EventKind::Noise(1.0),
                    );
                }
                Directive::Outlier { t, factor } => {
                    push(&mut events, *t, EventKind::Outlier(*factor));
                }
                Directive::Drop { t } => {
                    push(&mut events, *t, EventKind::Drop);
                }
                Directive::Blackout { t, dur } => {
                    push(&mut events, *t, EventKind::Blackout(true));
                    push(
                        &mut events,
                        SimDuration::from_micros(t.as_micros() + dur.as_micros()),
                        EventKind::Blackout(false),
                    );
                }
                Directive::Timeout { t } => {
                    push(&mut events, *t, EventKind::Timeout);
                }
                Directive::ThinkTail { t, sigma } => {
                    push(&mut events, *t, EventKind::ThinkTail(*sigma));
                }
                Directive::ServiceTail { t, sigma } => {
                    push(&mut events, *t, EventKind::ServiceTail(*sigma));
                }
                Directive::IntensityAt { .. }
                | Directive::IntensityRamp { .. }
                | Directive::IntensitySine { .. }
                | Directive::IntensitySpike { .. } => {}
            }
        }

        // Pass 2: sample the intensity curve at interval boundaries,
        // emitting only changes (the implicit starting intensity is
        // 1.0).
        let mut current = 1.0;
        for &b in &boundaries {
            let value = intensity_at(&self.directives, b);
            if value != current {
                push(&mut events, b, EventKind::Intensity(value));
                current = value;
            }
        }

        events.sort_by_key(|e| (e.t.as_micros(), e.seq));
        Timeline { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scn(body: &str) -> Scenario {
        let src = format!("name t\nduration 1200s\ninterval 300s\n{body}");
        Scenario::parse(&src).unwrap()
    }

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn timeline_is_totally_ordered() {
        let scn =
            scn("at 300s intensity 2\nat 300s mix ordering\nfault at 300s drop\nat 600s level 2\n");
        let tl = scn.compile();
        let keys: Vec<(u64, u64)> = tl
            .events()
            .iter()
            .map(|e| (e.t.as_micros(), e.seq))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted, "events must be strictly (t, seq)-sorted");
        // Ties at t=300s break in declaration order: mix, drop, then
        // the intensity sweep (pass 2) last.
        let at_300: Vec<&str> = tl
            .events()
            .iter()
            .filter(|e| e.t == secs(300))
            .map(|e| e.kind.label())
            .collect();
        assert_eq!(at_300, ["mix", "drop", "intensity"]);
    }

    #[test]
    fn intensity_steps_emit_only_changes() {
        let scn = scn("at 300s intensity 2\n");
        let tl = scn.compile();
        let intensities: Vec<(SimDuration, f64)> = tl
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Intensity(v) => Some((e.t, v)),
                _ => None,
            })
            .collect();
        // No event at 0s (implicit 1.0), one change at 300s, nothing
        // after (value holds).
        assert_eq!(intensities, vec![(secs(300), 2.0)]);
    }

    #[test]
    fn ramp_holds_final_value() {
        let scn = scn("ramp 0s..600s intensity 1 -> 3\n");
        let d = &scn.directives;
        assert_eq!(intensity_at(d, secs(0)), 1.0);
        assert_eq!(intensity_at(d, secs(300)), 2.0);
        assert_eq!(intensity_at(d, secs(600)), 3.0);
        assert_eq!(intensity_at(d, secs(900)), 3.0);
    }

    #[test]
    fn spike_overlays_the_curve_beneath() {
        let scn = scn("at 0s intensity 2\nspike at 300s peak 4 rise 150s decay 300s\n");
        let d = &scn.directives;
        assert_eq!(intensity_at(d, secs(0)), 2.0);
        assert_eq!(intensity_at(d, secs(300)), 2.0); // rise starts at baseline
        assert_eq!(intensity_at(d, secs(375)), 3.0); // halfway up
        assert_eq!(intensity_at(d, secs(450)), 4.0); // peak
        assert_eq!(intensity_at(d, secs(600)), 3.0); // halfway down
        assert_eq!(intensity_at(d, secs(750)), 2.0); // back on baseline
        assert_eq!(intensity_at(d, secs(1000)), 2.0); // spike window over
    }

    #[test]
    fn sine_returns_to_base_after_window() {
        let scn = scn("sine 0s..600s intensity 2 amp 1 period 600s\n");
        let d = &scn.directives;
        assert_eq!(intensity_at(d, secs(0)), 2.0);
        assert!((intensity_at(d, secs(150)) - 3.0).abs() < 1e-12);
        assert!((intensity_at(d, secs(450)) - 1.0).abs() < 1e-12);
        assert_eq!(intensity_at(d, secs(900)), 2.0);
    }

    #[test]
    fn drift_samples_boundaries_until_complete() {
        let scn = scn("drift 300s..900s mix shopping -> ordering\n");
        let tl = scn.compile();
        let fracs: Vec<(SimDuration, f64)> = tl
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::MixBlend { frac, .. } => Some((e.t, frac)),
                _ => None,
            })
            .collect();
        assert_eq!(
            fracs,
            vec![(secs(300), 0.0), (secs(600), 0.5), (secs(900), 1.0)]
        );
    }

    #[test]
    fn noise_emits_restore_pair() {
        let scn = scn("fault at 300s noise 1.5 for 300s\n");
        let tl = scn.compile();
        let noises: Vec<(SimDuration, f64)> = tl
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Noise(f) => Some((e.t, f)),
                _ => None,
            })
            .collect();
        assert_eq!(noises, vec![(secs(300), 1.5), (secs(600), 1.0)]);
    }

    #[test]
    fn blackout_emits_onset_and_lift_pair() {
        let scn = scn("fault at 300s blackout for 300s\nfault at 900s timeout\n");
        let tl = scn.compile();
        let marks: Vec<(SimDuration, &str, String)> = tl
            .events()
            .iter()
            .map(|e| (e.t, e.kind.label(), e.kind.to_string()))
            .collect();
        assert_eq!(
            marks,
            vec![
                (secs(300), "blackout", "outage begins".to_string()),
                (secs(600), "blackout", "outage lifted".to_string()),
                (secs(900), "timeout", "acquisition timed out".to_string()),
            ]
        );
    }

    #[test]
    fn events_past_duration_are_dropped() {
        let scn = scn("fault at 1200s drop\nfault at 900s noise 2 for 600s\n");
        let tl = scn.compile();
        // The drop at t == duration and the noise restore at 1500s are
        // both cut; only the noise onset survives.
        assert_eq!(tl.len(), 1);
        assert_eq!(tl.events()[0].kind, EventKind::Noise(2.0));
    }

    #[test]
    fn boundary_event_one_tick_inside_survives() {
        // Pins the `t == duration` exclusion exactly: the same
        // directive one microsecond earlier compiles.
        let at_end = scn("fault at 1200s drop\n");
        assert_eq!(at_end.compile().len(), 0);
        let inside = scn("fault at 1199999999us drop\n");
        assert_eq!(inside.compile().len(), 1);
        // And the parser warns about the dead directive.
        let (_, warnings) = Scenario::parse_with_warnings(
            "name t\nduration 1200s\ninterval 300s\nfault at 1200s drop\n",
        )
        .unwrap();
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].line, 4);
    }

    #[test]
    fn degenerate_directives_evaluate_finite() {
        // The parser rejects these forms; directly constructed
        // degenerate directives must still evaluate without NaN/inf.
        let zero_sine = [Directive::IntensitySine {
            t0: secs(0),
            t1: secs(600),
            base: 2.0,
            amp: 1.0,
            period: SimDuration::from_micros(0),
        }];
        for t in [0, 150, 600] {
            assert_eq!(intensity_at(&zero_sine, secs(t)), 2.0);
        }
        let zero_ramp = [Directive::IntensityRamp {
            t0: secs(300),
            t1: secs(300),
            from: 1.0,
            to: 3.0,
        }];
        // The `t >= t1` early return shields the zero-length division.
        assert_eq!(intensity_at(&zero_ramp, secs(300)), 3.0);
        assert_eq!(intensity_at(&zero_ramp, secs(600)), 3.0);
        // A zero-span drift jumps straight to frac 1.0 at every boundary.
        let mut degenerate = scn("");
        degenerate.directives.push(Directive::MixDrift {
            t0: secs(300),
            t1: secs(300),
            from: Mix::Shopping,
            to: Mix::Ordering,
        });
        let tl = degenerate.compile();
        let fracs: Vec<f64> = tl
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::MixBlend { frac, .. } => Some(frac),
                _ => None,
            })
            .collect();
        assert_eq!(fracs, vec![1.0]);
    }

    #[test]
    fn tail_directives_compile_in_order() {
        let scn = scn("tail at 300s think lognormal 1.2\ntail at 600s service lognormal 0.8\ntail at 900s think off\ntail at 900s service off\n");
        let tl = scn.compile();
        let marks: Vec<(SimDuration, &str, String)> = tl
            .events()
            .iter()
            .map(|e| (e.t, e.kind.label(), e.kind.to_string()))
            .collect();
        assert_eq!(
            marks,
            vec![
                (secs(300), "think_tail", "lognormal s=1.200".to_string()),
                (secs(600), "service_tail", "lognormal s=0.800".to_string()),
                (secs(900), "think_tail", "exponential".to_string()),
                (secs(900), "service_tail", "deterministic".to_string()),
            ]
        );
    }

    #[test]
    fn compile_is_deterministic() {
        let scn = Scenario::parse(crate::bundled::DEGRADE).unwrap();
        assert_eq!(scn.compile(), scn.compile());
    }

    #[test]
    fn labels_are_stable() {
        let kinds = [
            EventKind::Intensity(1.0),
            EventKind::MixStep(Mix::Shopping),
            EventKind::MixBlend {
                from: Mix::Shopping,
                to: Mix::Ordering,
                frac: 0.5,
            },
            EventKind::Level(ResourceLevel::Level2),
            EventKind::Stall {
                tier: Tier::AppDb,
                dur: secs(120),
            },
            EventKind::Noise(1.5),
            EventKind::Outlier(6.0),
            EventKind::Drop,
            EventKind::Blackout(true),
            EventKind::Blackout(false),
            EventKind::Timeout,
            EventKind::ThinkTail(Some(1.0)),
            EventKind::ServiceTail(None),
        ];
        let labels: Vec<&str> = kinds.iter().map(EventKind::label).collect();
        assert_eq!(
            labels,
            [
                "intensity",
                "mix",
                "mix_blend",
                "level",
                "stall",
                "noise",
                "outlier",
                "drop",
                "blackout",
                "blackout",
                "timeout",
                "think_tail",
                "service_tail"
            ]
        );
        // Display payloads are non-empty and deterministic.
        for k in &kinds {
            assert!(!k.to_string().is_empty());
        }
        assert_eq!(
            EventKind::Stall {
                tier: Tier::AppDb,
                dur: secs(120)
            }
            .to_string(),
            "appdb for 120s"
        );
    }
}
