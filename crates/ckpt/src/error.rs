//! The typed failure modes of snapshot reading and writing.

use std::fmt;
use std::path::PathBuf;

/// Why a snapshot could not be written, read, or applied.
///
/// Every rejection of a bad file maps to a distinct variant, so callers
/// (and tests) can tell a truncated file from a bit-flipped one from a
/// version skew without parsing message strings.
#[derive(Debug)]
pub enum CkptError {
    /// An OS-level I/O failure, with the path and the operation that
    /// failed attached for a self-explanatory message.
    Io {
        /// The file the operation was acting on.
        path: PathBuf,
        /// What we were doing, e.g. `"write temp file"`.
        context: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file does not start with the snapshot magic — not a
    /// checkpoint at all.
    BadMagic,
    /// The file is a checkpoint, but from a format revision this build
    /// does not speak.
    UnsupportedVersion {
        /// The version the file claims.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The file ends mid-structure.
    Truncated {
        /// Where the data ran out.
        detail: String,
    },
    /// A section's payload does not match its recorded checksum.
    CrcMismatch {
        /// The corrupted section.
        section: String,
    },
    /// A required section is absent.
    MissingSection {
        /// The section that was looked up.
        section: String,
    },
    /// Structurally invalid content: trailing bytes, invalid UTF-8 in a
    /// name, an out-of-range enum tag, and the like.
    Corrupt {
        /// What exactly was malformed.
        detail: String,
    },
    /// The snapshot is internally valid but does not apply here — e.g.
    /// it was taken against a different scenario or system spec.
    Mismatch {
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io {
                path,
                context,
                source,
            } => write!(f, "{} {}: {}", context, path.display(), source),
            CkptError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CkptError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads {supported})"
            ),
            CkptError::Truncated { detail } => write!(f, "truncated checkpoint: {detail}"),
            CkptError::CrcMismatch { section } => {
                write!(f, "checkpoint section `{section}` fails its CRC check")
            }
            CkptError::MissingSection { section } => {
                write!(f, "checkpoint is missing section `{section}`")
            }
            CkptError::Corrupt { detail } => write!(f, "corrupt checkpoint: {detail}"),
            CkptError::Mismatch { detail } => {
                write!(f, "checkpoint does not match this run: {detail}")
            }
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
