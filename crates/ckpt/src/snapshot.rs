//! The snapshot container: magic, format version, CRC-checked sections,
//! and atomic on-disk persistence.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     MAGIC  b"RACCKPT\0"
//! 8       4     format version (u32)
//! 12      4     section count (u32)
//! then, per section:
//!         2     name length (u16)
//!         n     name (UTF-8)
//!         8     payload length (u64)
//!         4     CRC-32 of payload
//!         m     payload
//! ```
//!
//! Strictly nothing after the last section; trailing bytes are rejected.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::Path;

use crate::crc::crc32;
use crate::error::CkptError;
use crate::wire::{Reader, Writer};

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"RACCKPT\0";

/// The format revision this build writes and the only one it reads.
pub const FORMAT_VERSION: u32 = 1;

/// Builds a snapshot section by section, then serializes or persists it.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty snapshot.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Appends a section whose payload is written by `fill`.
    ///
    /// # Panics
    ///
    /// Panics if `name` repeats an existing section or exceeds a `u16`
    /// length — section names are compile-time constants in practice,
    /// so either is a programming error.
    pub fn section(&mut self, name: &str, fill: impl FnOnce(&mut Writer)) {
        assert!(
            u16::try_from(name.len()).is_ok(),
            "section name too long: {name}"
        );
        assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate section: {name}"
        );
        let mut w = Writer::new();
        fill(&mut w);
        self.sections.push((name.to_string(), w.into_bytes()));
    }

    /// Number of sections added so far.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Whether no sections have been added.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Serializes the snapshot to its on-disk byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload: usize = self
            .sections
            .iter()
            .map(|(n, p)| 14 + n.len() + p.len())
            .sum();
        let mut out = Vec::with_capacity(16 + payload);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }

    /// Persists the snapshot atomically: parent directories are created,
    /// bytes go to `<path>.tmp`, the file is fsynced, then renamed over
    /// `path`. Returns the number of bytes written.
    pub fn write_atomic(&self, path: &Path) -> Result<u64, CkptError> {
        write_bytes_atomic(&self.to_bytes(), path)
    }
}

/// Atomically replaces `path` with `bytes` via a temp file + rename —
/// the same crash-safety as [`SnapshotWriter::write_atomic`], for
/// callers that already hold the serialized form. Parent directories
/// are created; returns the number of bytes written.
///
/// # Errors
///
/// Returns [`CkptError::Io`] (with path and context) when any
/// filesystem step fails.
pub fn write_bytes_atomic(bytes: &[u8], path: &Path) -> Result<u64, CkptError> {
    let io = |context: &'static str| {
        let path = path.to_path_buf();
        move |source: std::io::Error| CkptError::Io {
            path,
            context,
            source,
        }
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(io("create checkpoint directory for"))?;
        }
    }
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp).map_err(|source| CkptError::Io {
            path: tmp.clone(),
            context: "create temp checkpoint file",
            source,
        })?;
        f.write_all(bytes).map_err(|source| CkptError::Io {
            path: tmp.clone(),
            context: "write temp checkpoint file",
            source,
        })?;
        f.sync_all().map_err(|source| CkptError::Io {
            path: tmp.clone(),
            context: "sync temp checkpoint file",
            source,
        })?;
    }
    fs::rename(&tmp, path).map_err(io("rename temp checkpoint over"))?;
    Ok(bytes.len() as u64)
}

/// Removes a stale `<path>.tmp` left beside a checkpoint by a crash
/// that hit between temp-file creation and the final rename. The temp
/// file is by construction incomplete or unrenamed — the committed
/// snapshot at `path` (if any) is always the authoritative one — so
/// resume paths call this before scanning or loading. Returns whether a
/// temp file was actually removed.
///
/// # Errors
///
/// Returns [`CkptError::Io`] when the temp file exists but cannot be
/// removed; a missing temp file is the normal case, not an error.
pub fn remove_stale_temp(path: &Path) -> Result<bool, CkptError> {
    let tmp = path.with_extension("tmp");
    match fs::remove_file(&tmp) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
        Err(source) => Err(CkptError::Io {
            path: tmp,
            context: "remove stale temp checkpoint file",
            source,
        }),
    }
}

/// A decoded, checksum-verified snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// Parses and fully verifies a snapshot from its byte form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        if bytes.len() < 16 {
            return Err(CkptError::Truncated {
                detail: format!("file is {} bytes, header needs 16", bytes.len()),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if version != FORMAT_VERSION {
            return Err(CkptError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
        let mut r = Reader::new(&bytes[16..], "<container>");
        let mut sections = Vec::with_capacity(count as usize);
        for i in 0..count {
            let name_len = {
                let lo = r.get_u8()?;
                let hi = r.get_u8()?;
                u16::from_le_bytes([lo, hi]) as usize
            };
            let name_bytes: Vec<u8> = (0..name_len)
                .map(|_| r.get_u8())
                .collect::<Result<_, _>>()?;
            let name = String::from_utf8(name_bytes).map_err(|_| CkptError::Corrupt {
                detail: format!("section {i} name is not valid UTF-8"),
            })?;
            let payload_len = r.get_usize()?;
            let expect_crc = r.get_u32()?;
            if r.remaining() < payload_len {
                return Err(CkptError::Truncated {
                    detail: format!(
                        "section `{name}` claims {payload_len} payload bytes, only {} remain",
                        r.remaining()
                    ),
                });
            }
            let mut payload = Vec::with_capacity(payload_len);
            for _ in 0..payload_len {
                payload.push(r.get_u8()?);
            }
            if crc32(&payload) != expect_crc {
                return Err(CkptError::CrcMismatch { section: name });
            }
            sections.push((name, payload));
        }
        if r.remaining() != 0 {
            return Err(CkptError::Corrupt {
                detail: format!("{} trailing bytes after the last section", r.remaining()),
            });
        }
        Ok(Snapshot { sections })
    }

    /// Reads and verifies a snapshot file.
    pub fn load(path: &Path) -> Result<Self, CkptError> {
        let bytes = fs::read(path).map_err(|source| CkptError::Io {
            path: path.to_path_buf(),
            context: "read checkpoint file",
            source,
        })?;
        Snapshot::from_bytes(&bytes)
    }

    /// A reader over the named section's payload, or
    /// [`CkptError::MissingSection`].
    pub fn section(&self, name: &str) -> Result<Reader<'_>, CkptError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(n, p)| Reader::new(p, n))
            .ok_or_else(|| CkptError::MissingSection {
                section: name.to_string(),
            })
    }

    /// Whether the named section exists.
    pub fn has_section(&self, name: &str) -> bool {
        self.sections.iter().any(|(n, _)| n == name)
    }

    /// Section names, in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotWriter {
        let mut w = SnapshotWriter::new();
        w.section("alpha", |w| {
            w.put_u64(42);
            w.put_str("hello");
        });
        w.section("beta", |w| w.put_f64(1.5));
        w
    }

    #[test]
    fn round_trips() {
        let bytes = sample().to_bytes();
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(
            snap.section_names().collect::<Vec<_>>(),
            vec!["alpha", "beta"]
        );
        let mut r = snap.section("alpha").unwrap();
        assert_eq!(r.get_u64().unwrap(), 42);
        assert_eq!(r.get_str().unwrap(), "hello");
        r.finish().unwrap();
        let mut r = snap.section("beta").unwrap();
        assert_eq!(r.get_f64().unwrap(), 1.5);
        r.finish().unwrap();
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xff;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(CkptError::BadMagic)
        ));
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 99;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(CkptError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, CkptError::Truncated { .. }),
                "truncation to {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn rejects_payload_bit_flips() {
        let clean = sample().to_bytes();
        // Flip one bit in every payload byte position; each must be
        // caught by its section's CRC.
        let header = 16;
        let mut offset = header;
        for (name, payload) in &sample().sections {
            offset += 2 + name.len() + 8 + 4;
            for i in 0..payload.len() {
                let mut bytes = clean.clone();
                bytes[offset + i] ^= 0x01;
                assert!(
                    matches!(
                        Snapshot::from_bytes(&bytes),
                        Err(CkptError::CrcMismatch { .. })
                    ),
                    "flip at payload byte {i} of `{name}` not caught"
                );
            }
            offset += payload.len();
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn missing_section_is_typed() {
        let snap = Snapshot::from_bytes(&sample().to_bytes()).unwrap();
        assert!(matches!(
            snap.section("gamma"),
            Err(CkptError::MissingSection { .. })
        ));
    }

    #[test]
    fn atomic_write_then_load() {
        let dir = std::env::temp_dir().join(format!("ckpt-test-{}", std::process::id()));
        let path = dir.join("nested").join("snap.ckpt");
        let written = sample().write_atomic(&path).unwrap();
        assert_eq!(written, sample().to_bytes().len() as u64);
        let snap = Snapshot::load(&path).unwrap();
        assert!(snap.has_section("alpha"));
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_temp_never_shadows_the_committed_snapshot() {
        let dir = std::env::temp_dir().join(format!("ckpt-tmp-test-{}", std::process::id()));
        let path = dir.join("snap.ckpt");
        sample().write_atomic(&path).unwrap();
        // Emulate a crash mid-write: a torn temp file beside the real
        // snapshot.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &sample().to_bytes()[..10]).unwrap();
        assert!(remove_stale_temp(&path).unwrap());
        assert!(!tmp.exists(), "stale temp must be cleaned");
        // The committed snapshot is untouched and still loads.
        let snap = Snapshot::load(&path).unwrap();
        assert!(snap.has_section("alpha"));
        // Idempotent when there is nothing to clean.
        assert!(!remove_stale_temp(&path).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = Snapshot::load(Path::new("/nonexistent/definitely/missing.ckpt")).unwrap_err();
        assert!(matches!(err, CkptError::Io { .. }));
        let msg = err.to_string();
        assert!(msg.contains("missing.ckpt"), "{msg}");
    }
}
