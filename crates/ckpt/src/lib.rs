//! Crash-safe snapshot persistence: a versioned, deterministic,
//! length-prefixed binary container with a CRC-32 per section and
//! atomic write-temp-then-rename persistence.
//!
//! The format is deliberately dumb: a magic header, a format version,
//! and a flat list of named sections, each carrying an opaque payload
//! protected by its own checksum. Higher layers (the RL agent, the
//! scenario lineup runner) define what goes *inside* a section with the
//! little-endian primitives in [`wire`]; this crate only guarantees
//! that what comes back out is byte-for-byte what went in — or a typed
//! error, never garbage.
//!
//! # Reading guarantees
//!
//! [`Snapshot::from_bytes`] rejects, with a distinct [`CkptError`]
//! variant each: wrong magic, unsupported format version, truncation
//! anywhere (header, section header, payload), per-section CRC
//! mismatches, and trailing bytes after the last section. A snapshot
//! that decodes is exactly the snapshot that was written.
//!
//! # Writing guarantees
//!
//! [`SnapshotWriter::write_atomic`] serializes to `<path>.tmp`, fsyncs,
//! then renames over `path`. A crash at any point leaves either the old
//! complete file or the new complete file — never a torn one.
//!
//! # Example
//!
//! ```
//! use ckpt::{Snapshot, SnapshotWriter};
//!
//! let mut w = SnapshotWriter::new();
//! w.section("greeting", |w| w.put_str("hello"));
//! let bytes = w.to_bytes();
//!
//! let snap = Snapshot::from_bytes(&bytes).unwrap();
//! let mut r = snap.section("greeting").unwrap();
//! assert_eq!(r.get_str().unwrap(), "hello");
//! r.finish().unwrap();
//! ```

mod crc;
mod error;
mod snapshot;
pub mod wire;

pub use crc::crc32;
pub use error::CkptError;
pub use snapshot::{
    remove_stale_temp, write_bytes_atomic, Snapshot, SnapshotWriter, FORMAT_VERSION, MAGIC,
};
