//! CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant), table-driven.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// The CRC-32 of `bytes`.
///
/// # Example
///
/// ```
/// // Standard check value for the ASCII digits "123456789".
/// assert_eq!(ckpt::crc32(b"123456789"), 0xcbf4_3926);
/// assert_eq!(ckpt::crc32(b""), 0);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"checkpoint payload");
        let b = crc32(b"checkpoint paylo`d");
        assert_ne!(a, b);
    }
}
