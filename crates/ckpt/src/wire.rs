//! Little-endian primitives for section payloads.
//!
//! [`Writer`] appends fixed-width little-endian values to a buffer;
//! [`Reader`] pulls them back out with bounds checks, reporting
//! [`CkptError::Truncated`] the moment a read would run past the end.
//! Floats travel as raw bit patterns, so NaN payloads and signed zeros
//! round-trip exactly — determinism demands bit-for-bit fidelity, not
//! "close enough".

use crate::error::CkptError;

/// Appends little-endian primitives to a growable byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer and returns the encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `i64` as its two's-complement bit pattern.
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Appends an `f32` as its exact bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked reader over a section payload.
///
/// Carries the section name so truncation errors say *where* the data
/// ran out, not just that it did.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
    section: &'a str,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`, labelled with `section` for errors.
    pub fn new(bytes: &'a [u8], section: &'a str) -> Self {
        Reader {
            bytes,
            at: 0,
            section,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated {
                detail: format!(
                    "section `{}` ends at byte {} of {}, needed {} more",
                    self.section,
                    self.at,
                    self.bytes.len(),
                    n
                ),
            });
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub fn get_usize(&mut self) -> Result<usize, CkptError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CkptError::Corrupt {
            detail: format!("section `{}`: length {} exceeds usize", self.section, v),
        })
    }

    /// Reads an `i64` from its two's-complement bit pattern.
    pub fn get_i64(&mut self) -> Result<i64, CkptError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads an `f32` from its bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, CkptError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool, rejecting anything but 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, CkptError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            n => Err(CkptError::Corrupt {
                detail: format!("section `{}`: invalid bool byte {}", self.section, n),
            }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CkptError> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CkptError::Corrupt {
            detail: format!("section `{}`: string is not valid UTF-8", self.section),
        })
    }

    /// Asserts the payload was consumed exactly — a length drift between
    /// encoder and decoder is corruption, not something to ignore.
    pub fn finish(self) -> Result<(), CkptError> {
        if self.remaining() != 0 {
            return Err(CkptError::Corrupt {
                detail: format!(
                    "section `{}` has {} unread trailing bytes",
                    self.section,
                    self.remaining()
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 1);
        w.put_i64(-42);
        w.put_f32(-0.0);
        w.put_f64(f64::NAN);
        w.put_bool(true);
        w.put_str("naïve");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes, "t");
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        assert!(r.get_f64().unwrap().is_nan());
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "naïve");
        r.finish().unwrap();
    }

    #[test]
    fn short_read_is_truncated() {
        let mut r = Reader::new(&[1, 2, 3], "t");
        assert!(matches!(r.get_u64(), Err(CkptError::Truncated { .. })));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        let mut r = Reader::new(&[2], "t");
        assert!(matches!(r.get_bool(), Err(CkptError::Corrupt { .. })));
    }

    #[test]
    fn unread_trailing_bytes_are_corrupt() {
        let r = Reader::new(&[0], "t");
        assert!(matches!(r.finish(), Err(CkptError::Corrupt { .. })));
    }
}
