//! Dense Q-tables and temporal-difference updates.

/// A dense table of action values `Q(s, a)`, stored as `f32` to keep
/// large configuration lattices cache- and memory-friendly.
///
/// # Example
///
/// ```
/// use rl::QTable;
///
/// let mut q = QTable::new(4, 2);
/// q.set(1, 0, 0.5);
/// q.set(1, 1, 1.5);
/// assert_eq!(q.best_action(1), 1);
/// assert_eq!(q.max_q(1), 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QTable {
    values: Vec<f32>,
    states: usize,
    actions: usize,
}

impl QTable {
    /// Creates a zero-initialized table.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the table would overflow
    /// memory indexing.
    pub fn new(states: usize, actions: usize) -> Self {
        assert!(
            states > 0 && actions > 0,
            "table dimensions must be positive"
        );
        let size = states.checked_mul(actions).expect("Q-table too large");
        QTable {
            values: vec![0.0; size],
            states,
            actions,
        }
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.states
    }

    /// Number of actions per state.
    pub fn actions(&self) -> usize {
        self.actions
    }

    #[inline]
    fn idx(&self, s: usize, a: usize) -> usize {
        debug_assert!(
            s < self.states && a < self.actions,
            "({s},{a}) out of bounds"
        );
        s * self.actions + a
    }

    /// Reads `Q(s, a)`.
    #[inline]
    pub fn get(&self, s: usize, a: usize) -> f64 {
        self.values[self.idx(s, a)] as f64
    }

    /// Writes `Q(s, a)`.
    #[inline]
    pub fn set(&mut self, s: usize, a: usize, value: f64) {
        let i = self.idx(s, a);
        self.values[i] = value as f32;
    }

    /// The greedy action at `s` (ties broken toward the lowest index,
    /// deterministically).
    pub fn best_action(&self, s: usize) -> usize {
        let row = &self.values[s * self.actions..(s + 1) * self.actions];
        let mut best = 0;
        for (a, v) in row.iter().enumerate().skip(1) {
            if *v > row[best] {
                best = a;
            }
        }
        best
    }

    /// `max_a Q(s, a)`.
    pub fn max_q(&self, s: usize) -> f64 {
        let row = &self.values[s * self.actions..(s + 1) * self.actions];
        row.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64
    }

    /// Resets every entry to zero.
    pub fn reset(&mut self) {
        self.values.fill(0.0);
    }

    /// The raw state-major value storage, for persistence. Row `s`
    /// occupies `raw()[s * actions .. (s + 1) * actions]`.
    pub fn raw(&self) -> &[f32] {
        &self.values
    }

    /// Mutable raw storage for the sweep hot loop, which indexes rows by
    /// precomputed stride instead of going through [`get`](Self::get) /
    /// [`set`](Self::set) per update.
    pub(crate) fn raw_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Rebuilds a table from storage previously captured with
    /// [`QTable::raw`].
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are zero or `values.len() != states *
    /// actions` — callers restoring untrusted data must validate the
    /// shape first.
    pub fn from_raw(states: usize, actions: usize, values: Vec<f32>) -> Self {
        assert!(
            states > 0 && actions > 0,
            "table dimensions must be positive"
        );
        assert_eq!(
            values.len(),
            states * actions,
            "raw Q-table length mismatch"
        );
        QTable {
            values,
            states,
            actions,
        }
    }

    /// Copies all values from another table of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, other: &QTable) {
        assert_eq!(
            (self.states, self.actions),
            (other.states, other.actions),
            "Q-table shape mismatch"
        );
        self.values.copy_from_slice(&other.values);
    }
}

/// Temporal-difference learning parameters (the paper uses α = 0.1,
/// γ = 0.9).
///
/// # Example
///
/// ```
/// use rl::{QLearning, QTable};
///
/// let mut q = QTable::new(2, 2);
/// let td = QLearning::new(0.5, 0.9);
/// // Take action 1 in state 0, land in state 1 with reward 1.0.
/// let delta = td.update(&mut q, 0, 1, 1.0, 1);
/// assert!((q.get(0, 1) - 0.5).abs() < 1e-6);
/// assert!((delta - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QLearning {
    alpha: f64,
    gamma: f64,
}

impl QLearning {
    /// Creates an updater with learning rate `alpha` and discount
    /// `gamma`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]` or `gamma` outside `[0, 1)`.
    pub fn new(alpha: f64, gamma: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!((0.0..1.0).contains(&gamma), "gamma must be in [0, 1)");
        QLearning { alpha, gamma }
    }

    /// Learning rate α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Discount rate γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Off-policy Q-learning update:
    /// `Q(s,a) += α · (r + γ · max_a' Q(s',a') − Q(s,a))`.
    ///
    /// Returns the absolute change, used for Algorithm 1's convergence
    /// test.
    pub fn update(&self, q: &mut QTable, s: usize, a: usize, r: f64, s2: usize) -> f64 {
        let old = q.get(s, a);
        let target = r + self.gamma * q.max_q(s2);
        let new = old + self.alpha * (target - old);
        q.set(s, a, new);
        (new - old).abs()
    }

    /// TD update toward an externally supplied successor value:
    /// `Q(s,a) += α · (r + γ · next_value − Q(s,a))`.
    ///
    /// [`update`](QLearning::update) and
    /// [`sarsa_update`](QLearning::sarsa_update) are the `max` and
    /// `Q(s',a')` specializations of this.
    ///
    /// Returns the absolute change.
    pub fn update_toward(
        &self,
        q: &mut QTable,
        s: usize,
        a: usize,
        r: f64,
        next_value: f64,
    ) -> f64 {
        let old = q.get(s, a);
        let target = r + self.gamma * next_value;
        let new = old + self.alpha * (target - old);
        q.set(s, a, new);
        (new - old).abs()
    }

    /// On-policy SARSA update:
    /// `Q(s,a) += α · (r + γ · Q(s',a') − Q(s,a))`.
    ///
    /// Returns the absolute change.
    pub fn sarsa_update(
        &self,
        q: &mut QTable,
        s: usize,
        a: usize,
        r: f64,
        s2: usize,
        a2: usize,
    ) -> f64 {
        let old = q.get(s, a);
        let target = r + self.gamma * q.get(s2, a2);
        let new = old + self.alpha * (target - old);
        q.set(s, a, new);
        (new - old).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_table_is_zero() {
        let q = QTable::new(3, 2);
        for s in 0..3 {
            for a in 0..2 {
                assert_eq!(q.get(s, a), 0.0);
            }
        }
        assert_eq!(q.states(), 3);
        assert_eq!(q.actions(), 2);
    }

    #[test]
    fn best_action_tie_breaks_low() {
        let q = QTable::new(1, 3);
        assert_eq!(q.best_action(0), 0);
        let mut q2 = QTable::new(1, 3);
        q2.set(0, 2, 5.0);
        q2.set(0, 1, 5.0);
        assert_eq!(q2.best_action(0), 1, "first maximal action wins");
    }

    #[test]
    fn update_moves_toward_target() {
        let mut q = QTable::new(2, 1);
        let td = QLearning::new(0.1, 0.9);
        q.set(1, 0, 10.0);
        // target = 1 + 0.9*10 = 10; delta = 0.1 * 10 = 1
        let delta = td.update(&mut q, 0, 0, 1.0, 1);
        assert!((delta - 1.0).abs() < 1e-6);
        assert!((q.get(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn repeated_updates_converge_to_fixed_point() {
        let mut q = QTable::new(1, 1);
        let td = QLearning::new(0.5, 0.5);
        // Self-loop with reward 1: fixed point Q = 1 / (1 - γ) = 2.
        for _ in 0..100 {
            td.update(&mut q, 0, 0, 1.0, 0);
        }
        assert!((q.get(0, 0) - 2.0).abs() < 1e-4);
    }

    #[test]
    fn sarsa_uses_chosen_next_action() {
        let mut q = QTable::new(2, 2);
        q.set(1, 0, 0.0);
        q.set(1, 1, 10.0);
        let td = QLearning::new(1.0, 0.9);
        td.sarsa_update(&mut q, 0, 0, 0.0, 1, 0);
        assert_eq!(
            q.get(0, 0),
            0.0,
            "SARSA follows the sampled action, not the max"
        );
        td.update(&mut q, 0, 1, 0.0, 1);
        assert!((q.get(0, 1) - 9.0).abs() < 1e-6);
    }

    #[test]
    fn reset_and_copy() {
        let mut a = QTable::new(2, 2);
        a.set(0, 0, 3.0);
        let mut b = QTable::new(2, 2);
        b.copy_from(&a);
        assert_eq!(b.get(0, 0), 3.0);
        b.reset();
        assert_eq!(b.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn copy_shape_mismatch_panics() {
        QTable::new(2, 2).copy_from(&QTable::new(2, 3));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        QLearning::new(0.0, 0.9);
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn bad_gamma_panics() {
        QLearning::new(0.1, 1.0);
    }

    proptest! {
        /// TD updates keep values bounded when rewards are bounded:
        /// |Q| ≤ r_max / (1 − γ).
        #[test]
        fn prop_bounded_values(
            rewards in proptest::collection::vec(-1.0f64..1.0, 1..100),
        ) {
            let mut q = QTable::new(3, 2);
            let td = QLearning::new(0.2, 0.9);
            let bound = 1.0 / (1.0 - 0.9) + 1e-3;
            for (i, r) in rewards.iter().enumerate() {
                let s = i % 3;
                let a = i % 2;
                let s2 = (i + 1) % 3;
                td.update(&mut q, s, a, *r, s2);
                prop_assert!(q.get(s, a).abs() <= bound);
            }
        }
    }
}
