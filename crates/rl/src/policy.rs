//! Action-selection policies.

use simkernel::Pcg64;

use crate::qtable::QTable;

/// ε-greedy selection: with probability ε pick a uniformly random
/// action (exploration), otherwise the greedy one (exploitation).
///
/// The paper uses ε = 0.1 for offline/batch training and ε = 0.05 for
/// online decisions (Section 5.5 shows 0.05 performs best online).
///
/// # Example
///
/// ```
/// use rl::policy::EpsilonGreedy;
/// use rl::QTable;
/// use simkernel::Pcg64;
///
/// let mut q = QTable::new(1, 3);
/// q.set(0, 2, 1.0);
/// let mut rng = Pcg64::seed_from_u64(1);
/// let greedy = EpsilonGreedy::new(0.0);
/// assert_eq!(greedy.choose(&q, 0, &mut rng), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsilonGreedy {
    epsilon: f64,
}

impl EpsilonGreedy {
    /// Creates a policy with exploration rate `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `[0, 1]`.
    pub fn new(epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        EpsilonGreedy { epsilon }
    }

    /// Exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Chooses an action for state `s`.
    pub fn choose(&self, q: &QTable, s: usize, rng: &mut Pcg64) -> usize {
        if self.epsilon > 0.0 && rng.chance(self.epsilon) {
            rng.below(q.actions() as u64) as usize
        } else {
            q.best_action(s)
        }
    }
}

/// Softmax (Boltzmann) selection: actions are drawn with probability
/// proportional to `exp(Q(s,a)/τ)`.
///
/// Included as an alternative exploration scheme for ablations; the
/// paper itself uses ε-greedy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Softmax {
    temperature: f64,
}

impl Softmax {
    /// Creates a policy with temperature `τ` (higher = more uniform).
    ///
    /// # Panics
    ///
    /// Panics if `temperature` is not positive and finite.
    pub fn new(temperature: f64) -> Self {
        assert!(
            temperature.is_finite() && temperature > 0.0,
            "temperature must be positive"
        );
        Softmax { temperature }
    }

    /// Chooses an action for state `s`.
    pub fn choose(&self, q: &QTable, s: usize, rng: &mut Pcg64) -> usize {
        let n = q.actions();
        // Subtract the max for numerical stability.
        let max = (0..n)
            .map(|a| q.get(s, a))
            .fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = (0..n)
            .map(|a| ((q.get(s, a) - max) / self.temperature).exp())
            .collect();
        rng.weighted_index(&weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> QTable {
        let mut q = QTable::new(2, 4);
        q.set(0, 1, 2.0);
        q.set(1, 3, 5.0);
        q
    }

    #[test]
    fn zero_epsilon_is_pure_greedy() {
        let q = table();
        let mut rng = Pcg64::seed_from_u64(3);
        let p = EpsilonGreedy::new(0.0);
        for _ in 0..100 {
            assert_eq!(p.choose(&q, 0, &mut rng), 1);
            assert_eq!(p.choose(&q, 1, &mut rng), 3);
        }
    }

    #[test]
    fn full_epsilon_is_uniform() {
        let q = table();
        let mut rng = Pcg64::seed_from_u64(4);
        let p = EpsilonGreedy::new(1.0);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[p.choose(&q, 0, &mut rng)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn intermediate_epsilon_mostly_greedy() {
        let q = table();
        let mut rng = Pcg64::seed_from_u64(5);
        let p = EpsilonGreedy::new(0.1);
        let greedy = (0..10_000)
            .filter(|_| p.choose(&q, 0, &mut rng) == 1)
            .count();
        // 90% greedy + 2.5% random hits on action 1 ≈ 92.5%.
        assert!((9_000..9_600).contains(&greedy), "greedy picks {greedy}");
    }

    #[test]
    fn softmax_prefers_high_q() {
        let q = table();
        let mut rng = Pcg64::seed_from_u64(6);
        let p = Softmax::new(1.0);
        let mut counts = [0u32; 4];
        for _ in 0..10_000 {
            counts[p.choose(&q, 0, &mut rng)] += 1;
        }
        assert!(counts[1] > counts[0]);
        assert!(counts[1] > counts[2]);
    }

    #[test]
    fn softmax_high_temperature_flattens() {
        let q = table();
        let mut rng = Pcg64::seed_from_u64(7);
        let p = Softmax::new(1e6);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[p.choose(&q, 0, &mut rng)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_panics() {
        EpsilonGreedy::new(1.5);
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn bad_temperature_panics() {
        Softmax::new(0.0);
    }
}
