//! Tabular reinforcement learning for the RAC agent.
//!
//! The paper casts online auto-configuration as a finite Markov decision
//! process whose states are configurations and whose actions adjust one
//! parameter at a time, solved with temporal-difference Q-learning
//! (Section 3.2, Algorithm 1). This crate provides the generic machinery,
//! independent of web systems:
//!
//! * [`IndexSpace`] — mixed-radix encoding of multi-dimensional discrete
//!   state lattices into dense indices.
//! * [`QTable`] — a dense `#states × #actions` table of action values.
//! * [`policy`] — ε-greedy / greedy / softmax action selection.
//! * [`QLearning`] — TD(0) updates (Q-learning and SARSA flavours).
//! * [`Environment`] + [`batch_value_sweep`] — Algorithm 1: repeated
//!   full-table sweeps against a (deterministic) model of the
//!   environment until the largest Q change drops below θ.
//! * [`ExperienceLog`] — bounded history of `(s, a, r, s')` transitions
//!   for batch retraining.
//!
//! # Example
//!
//! Solve a toy chain MDP where the reward peaks at state 7:
//!
//! ```
//! use rl::{batch_value_sweep, Environment, QLearning, QTable};
//!
//! struct Chain;
//! impl Environment for Chain {
//!     fn num_states(&self) -> usize { 10 }
//!     fn num_actions(&self) -> usize { 3 } // left, stay, right
//!     fn transition(&self, s: usize, a: usize) -> usize {
//!         match a { 0 => s.saturating_sub(1), 1 => s, _ => (s + 1).min(9) }
//!     }
//!     fn reward(&self, _s: usize, _a: usize, s2: usize) -> f64 {
//!         -((s2 as f64) - 7.0).abs()
//!     }
//! }
//!
//! let mut q = QTable::new(10, 3);
//! batch_value_sweep(&Chain, &mut q, &QLearning::new(1.0, 0.9), 1e-6, 500);
//! // From state 0 the learned policy walks right.
//! assert_eq!(q.best_action(0), 2);
//! // From state 9 it walks left.
//! assert_eq!(q.best_action(9), 0);
//! ```

mod double_q;
mod experience;
pub mod policy;
mod qtable;
mod space;
mod sweep;

pub use double_q::DoubleQ;
pub use experience::{ExperienceLog, Transition};
pub use qtable::{QLearning, QTable};
pub use space::IndexSpace;
pub use sweep::{
    batch_value_sweep, batch_value_sweep_report, batch_value_sweep_with, Backup, Environment,
    SweepReport,
};
