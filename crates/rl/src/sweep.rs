//! Algorithm 1: batch value sweeps against an environment model.

use crate::qtable::{QLearning, QTable};

/// A (deterministic) model of the environment: the MDP the RAC agent
/// plans against.
///
/// The configuration MDP is deterministic — applying a reconfiguration
/// action yields a known next configuration — so the model needs only a
/// transition function and a reward function. Rewards typically come
/// from measured samples plus regression-predicted performance for
/// unvisited configurations.
pub trait Environment {
    /// Number of states.
    fn num_states(&self) -> usize;
    /// Number of actions available in every state.
    fn num_actions(&self) -> usize;
    /// The state reached by taking `a` in `s`.
    ///
    /// Must be pure: the sweep reads the whole model into dense tables
    /// once per call, so a transition that changed between invocations
    /// would silently be ignored.
    fn transition(&self, s: usize, a: usize) -> usize;
    /// Immediate reward for the transition `s --a--> s2`.
    ///
    /// Must be pure, like [`transition`](Self::transition).
    fn reward(&self, s: usize, a: usize, s2: usize) -> f64;
}

/// How a sweep values the successor state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backup {
    /// Off-policy Q-learning: `V(s') = max_a Q(s', a)`.
    Greedy,
    /// Expected SARSA under an ε-greedy behaviour policy:
    /// `V(s') = (1 − ε)·max_a Q(s', a) + ε·mean_a Q(s', a)`.
    ///
    /// Valuing successors the way the *online* agent will actually act
    /// (it explores!) yields slightly more conservative policies; the
    /// paper uses plain Q-learning, this variant exists for ablation.
    EpsilonGreedy(f64),
}

impl Backup {
    fn state_value(self, q: &QTable, s: usize) -> f64 {
        match self {
            Backup::Greedy => q.max_q(s),
            Backup::EpsilonGreedy(epsilon) => {
                let n = q.actions();
                let mean: f64 = (0..n).map(|a| q.get(s, a)).sum::<f64>() / n as f64;
                (1.0 - epsilon) * q.max_q(s) + epsilon * mean
            }
        }
    }
}

/// What a batch retraining sweep did — the observability payload the
/// online agent reports per iteration (passes run, largest Q-entry
/// change, total updates applied).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SweepReport {
    /// Passes performed (≥ 1).
    pub passes: usize,
    /// Largest single-entry |ΔQ| observed in the **final** pass — the
    /// residual training error when the sweep stopped.
    pub max_delta: f64,
    /// Total TD updates applied across all passes.
    pub updates: u64,
}

/// Runs repeated full-table Q-learning sweeps (the paper's Algorithm 1)
/// until the largest single-entry change in a pass drops below `theta`
/// or `max_passes` passes have run.
///
/// Returns the number of passes performed.
///
/// # Panics
///
/// Panics if the Q-table shape does not match the environment, `theta`
/// is negative, or `max_passes` is zero.
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn batch_value_sweep(
    env: &impl Environment,
    q: &mut QTable,
    learner: &QLearning,
    theta: f64,
    max_passes: usize,
) -> usize {
    batch_value_sweep_report(env, q, learner, Backup::Greedy, theta, max_passes).passes
}

/// [`batch_value_sweep`] with an explicit successor-state [`Backup`]
/// rule.
///
/// # Panics
///
/// Same as [`batch_value_sweep`]; additionally panics if an
/// [`Backup::EpsilonGreedy`] ε is outside `[0, 1]`.
pub fn batch_value_sweep_with(
    env: &impl Environment,
    q: &mut QTable,
    learner: &QLearning,
    backup: Backup,
    theta: f64,
    max_passes: usize,
) -> usize {
    batch_value_sweep_report(env, q, learner, backup, theta, max_passes).passes
}

/// The fully instrumented sweep: like [`batch_value_sweep_with`] but
/// returning the [`SweepReport`] (passes, residual max |ΔQ|, update
/// count) instead of just the pass count.
///
/// # Panics
///
/// Same as [`batch_value_sweep_with`].
pub fn batch_value_sweep_report(
    env: &impl Environment,
    q: &mut QTable,
    learner: &QLearning,
    backup: Backup,
    theta: f64,
    max_passes: usize,
) -> SweepReport {
    assert_eq!(q.states(), env.num_states(), "state count mismatch");
    assert_eq!(q.actions(), env.num_actions(), "action count mismatch");
    assert!(theta >= 0.0, "theta must be non-negative");
    assert!(max_passes > 0, "need at least one pass");
    if let Backup::EpsilonGreedy(e) = backup {
        assert!((0.0..=1.0).contains(&e), "epsilon must be in [0, 1]");
    }

    let states = env.num_states();
    let actions = env.num_actions();

    // Read the (pure) model out into dense row-stride tables once per
    // sweep: every pass then runs over flat arrays — no dynamic dispatch
    // per update, no recomputed reward arithmetic (`ConfigMdp` divides
    // by the SLA on every `reward` call). Purity makes this
    // bit-identical to querying the model inside the loop.
    let mut transitions: Vec<u32> = Vec::with_capacity(states * actions);
    let mut rewards: Vec<f64> = Vec::with_capacity(states * actions);
    for s in 0..states {
        for a in 0..actions {
            let s2 = env.transition(s, a);
            assert!(s2 < states, "transition ({s},{a}) -> {s2} out of range");
            transitions.push(s2 as u32);
            rewards.push(env.reward(s, a, s2));
        }
    }

    let mut report = SweepReport::default();
    match backup {
        Backup::Greedy => {
            // The greedy backup only ever needs `max_a Q(s', a)`, so the
            // per-state row maximum is tracked incrementally: an update
            // raises it directly, and only demoting the current maximum
            // forces an O(actions) rescan. f32 `max` over a row is
            // order-independent, so the cached value is always exactly
            // `QTable::max_q` — the sweep stays a Gauss-Seidel pass
            // (successor values are read mid-pass, as written).
            let alpha = learner.alpha();
            let gamma = learner.gamma();
            let row_max_of = |row: &[f32]| row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let values = q.raw_mut();
            let mut row_max: Vec<f32> = (0..states)
                .map(|s| row_max_of(&values[s * actions..(s + 1) * actions]))
                .collect();
            for pass in 1..=max_passes {
                let mut error: f64 = 0.0;
                for s in 0..states {
                    let base = s * actions;
                    for a in 0..actions {
                        let s2 = transitions[base + a] as usize;
                        // Same arithmetic as `QLearning::update_toward`:
                        // f64 target, f32 store, f64 delta.
                        let old32 = values[base + a];
                        let old = old32 as f64;
                        let target = rewards[base + a] + gamma * row_max[s2] as f64;
                        let new = old + alpha * (target - old);
                        let new32 = new as f32;
                        values[base + a] = new32;
                        if new32 >= row_max[s] {
                            row_max[s] = new32;
                        } else if old32 == row_max[s] {
                            row_max[s] = row_max_of(&values[base..base + actions]);
                        }
                        error = error.max((new - old).abs());
                    }
                }
                report.passes = pass;
                report.max_delta = error;
                report.updates += (states * actions) as u64;
                if error < theta {
                    break;
                }
            }
        }
        Backup::EpsilonGreedy(_) => {
            // The ε-greedy backup folds an order-dependent f64 mean over
            // the successor row, which every write invalidates — no
            // cache can reproduce it bit-exactly, so this ablation
            // variant keeps the straightforward loop (still fed from
            // the precomputed tables).
            for pass in 1..=max_passes {
                let mut error: f64 = 0.0;
                for s in 0..states {
                    let base = s * actions;
                    for a in 0..actions {
                        let s2 = transitions[base + a] as usize;
                        let next_value = backup.state_value(q, s2);
                        let delta = learner.update_toward(q, s, a, rewards[base + a], next_value);
                        error = error.max(delta);
                    }
                }
                report.passes = pass;
                report.max_delta = error;
                report.updates += (states * actions) as u64;
                if error < theta {
                    break;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-D lattice where moving toward the middle pays.
    struct Ridge {
        n: usize,
        peak: usize,
    }

    impl Environment for Ridge {
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_actions(&self) -> usize {
            3
        }
        fn transition(&self, s: usize, a: usize) -> usize {
            match a {
                0 => s.saturating_sub(1),
                1 => s,
                _ => (s + 1).min(self.n - 1),
            }
        }
        fn reward(&self, _s: usize, _a: usize, s2: usize) -> f64 {
            -((s2 as f64) - (self.peak as f64)).abs()
        }
    }

    #[test]
    fn converges_to_peak_seeking_policy() {
        let env = Ridge { n: 21, peak: 13 };
        let mut q = QTable::new(21, 3);
        let passes = batch_value_sweep(&env, &mut q, &QLearning::new(1.0, 0.9), 1e-4, 1000);
        assert!(passes < 1000, "did not converge");
        for s in 0..21 {
            let a = q.best_action(s);
            match s.cmp(&13) {
                std::cmp::Ordering::Less => assert_eq!(a, 2, "state {s} should move right"),
                std::cmp::Ordering::Equal => assert_eq!(a, 1, "peak should stay"),
                std::cmp::Ordering::Greater => assert_eq!(a, 0, "state {s} should move left"),
            }
        }
    }

    #[test]
    fn respects_max_passes() {
        let env = Ridge { n: 50, peak: 25 };
        let mut q = QTable::new(50, 3);
        let passes = batch_value_sweep(&env, &mut q, &QLearning::new(0.1, 0.9), 0.0, 3);
        assert_eq!(passes, 3);
    }

    #[test]
    fn theta_zero_runs_all_passes() {
        let env = Ridge { n: 5, peak: 2 };
        let mut q = QTable::new(5, 3);
        // theta 0 can never be beaten by a strictly positive error, but a
        // fully converged table yields exactly 0 deltas under alpha=1.
        let passes = batch_value_sweep(&env, &mut q, &QLearning::new(1.0, 0.5), 1e-12, 500);
        assert!(passes < 500);
    }

    #[test]
    #[should_panic(expected = "state count mismatch")]
    fn shape_mismatch_panics() {
        let env = Ridge { n: 5, peak: 2 };
        let mut q = QTable::new(4, 3);
        batch_value_sweep(&env, &mut q, &QLearning::new(0.5, 0.5), 1e-3, 10);
    }

    #[test]
    fn expected_sarsa_backup_is_more_conservative() {
        // With exploration, successor values are averaged down, so the
        // converged Q-values are bounded above by the greedy ones.
        let env = Ridge { n: 15, peak: 7 };
        let learner = QLearning::new(0.5, 0.9);
        let mut greedy = QTable::new(15, 3);
        batch_value_sweep_with(&env, &mut greedy, &learner, Backup::Greedy, 1e-4, 5_000);
        let mut sarsa = QTable::new(15, 3);
        batch_value_sweep_with(
            &env,
            &mut sarsa,
            &learner,
            Backup::EpsilonGreedy(0.3),
            1e-4,
            5_000,
        );
        for s in 0..15 {
            assert!(
                sarsa.max_q(s) <= greedy.max_q(s) + 1e-3,
                "state {s}: sarsa {} > greedy {}",
                sarsa.max_q(s),
                greedy.max_q(s)
            );
        }
        // Both still find the same greedy policy at the peak's neighbours.
        assert_eq!(sarsa.best_action(3), greedy.best_action(3));
    }

    #[test]
    fn epsilon_zero_backup_equals_greedy() {
        let env = Ridge { n: 9, peak: 4 };
        let learner = QLearning::new(1.0, 0.5);
        let mut a = QTable::new(9, 3);
        let mut b = QTable::new(9, 3);
        batch_value_sweep_with(&env, &mut a, &learner, Backup::Greedy, 1e-6, 200);
        batch_value_sweep_with(
            &env,
            &mut b,
            &learner,
            Backup::EpsilonGreedy(0.0),
            1e-6,
            200,
        );
        for s in 0..9 {
            for act in 0..3 {
                assert!((a.get(s, act) - b.get(s, act)).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0, 1]")]
    fn bad_backup_epsilon_panics() {
        let env = Ridge { n: 5, peak: 2 };
        let mut q = QTable::new(5, 3);
        batch_value_sweep_with(
            &env,
            &mut q,
            &QLearning::new(0.5, 0.5),
            Backup::EpsilonGreedy(1.5),
            1e-3,
            10,
        );
    }

    #[test]
    fn report_matches_pass_count_and_counts_updates() {
        let env = Ridge { n: 21, peak: 13 };
        let learner = QLearning::new(1.0, 0.9);
        let mut q1 = QTable::new(21, 3);
        let passes = batch_value_sweep(&env, &mut q1, &learner, 1e-4, 1000);
        let mut q2 = QTable::new(21, 3);
        let report = batch_value_sweep_report(&env, &mut q2, &learner, Backup::Greedy, 1e-4, 1000);
        assert_eq!(report.passes, passes);
        assert_eq!(report.updates, (passes * 21 * 3) as u64);
        assert!(report.max_delta < 1e-4, "residual {}", report.max_delta);
        // Identical sweeps produce identical tables.
        for s in 0..21 {
            for a in 0..3 {
                assert_eq!(q1.get(s, a), q2.get(s, a));
            }
        }
    }

    /// The pre-optimization sweep loop, verbatim: queries the model per
    /// update and recomputes `state_value` from the live table. The
    /// optimized sweep must reproduce it bit-for-bit.
    fn naive_sweep_report(
        env: &impl Environment,
        q: &mut QTable,
        learner: &QLearning,
        backup: Backup,
        theta: f64,
        max_passes: usize,
    ) -> SweepReport {
        let mut report = SweepReport::default();
        for pass in 1..=max_passes {
            let mut error: f64 = 0.0;
            for s in 0..env.num_states() {
                for a in 0..env.num_actions() {
                    let s2 = env.transition(s, a);
                    let r = env.reward(s, a, s2);
                    let next_value = backup.state_value(q, s2);
                    let delta = learner.update_toward(q, s, a, r, next_value);
                    error = error.max(delta);
                }
            }
            report.passes = pass;
            report.max_delta = error;
            report.updates += (env.num_states() * env.num_actions()) as u64;
            if error < theta {
                break;
            }
        }
        report
    }

    /// A model with irrational rewards and tangled transitions, so any
    /// reordering of float operations in the optimized loop shows up as
    /// a bit difference somewhere in thousands of updates.
    struct Scramble {
        n: usize,
    }

    impl Environment for Scramble {
        fn num_states(&self) -> usize {
            self.n
        }
        fn num_actions(&self) -> usize {
            5
        }
        fn transition(&self, s: usize, a: usize) -> usize {
            (s * 7 + a * 13 + 3) % self.n
        }
        fn reward(&self, s: usize, a: usize, s2: usize) -> f64 {
            ((s * 31 + a * 17 + s2) as f64).sin() / 3.0
        }
    }

    #[test]
    fn optimized_sweep_is_bit_identical_to_naive_loop() {
        for (backup, theta, passes) in [
            (Backup::Greedy, 1e-6, 400),
            (Backup::Greedy, 0.0, 50),
            (Backup::EpsilonGreedy(0.2), 1e-6, 400),
        ] {
            for learner in [QLearning::new(0.1, 0.9), QLearning::new(1.0, 0.5)] {
                for env_n in [7usize, 64] {
                    let env = Scramble { n: env_n };
                    let mut fast = QTable::new(env_n, 5);
                    let report_fast =
                        batch_value_sweep_report(&env, &mut fast, &learner, backup, theta, passes);
                    let mut slow = QTable::new(env_n, 5);
                    let report_slow =
                        naive_sweep_report(&env, &mut slow, &learner, backup, theta, passes);
                    assert_eq!(report_fast, report_slow, "{backup:?} n={env_n}");
                    let fast_bits: Vec<u32> = fast.raw().iter().map(|v| v.to_bits()).collect();
                    let slow_bits: Vec<u32> = slow.raw().iter().map(|v| v.to_bits()).collect();
                    assert_eq!(fast_bits, slow_bits, "{backup:?} n={env_n}");
                }
            }
        }
    }

    #[test]
    fn optimized_sweep_matches_naive_from_warm_nonzero_table() {
        // Warm tables exercise the incremental row-max bookkeeping from
        // a state where maxima sit at arbitrary positions (including
        // demotions of the current maximum).
        let env = Scramble { n: 33 };
        let learner = QLearning::new(0.3, 0.8);
        let mut seed = QTable::new(33, 5);
        for s in 0..33 {
            for a in 0..5 {
                seed.set(s, a, ((s * 5 + a) as f64).cos() * 2.0);
            }
        }
        let mut fast = seed.clone();
        let mut slow = seed;
        let rf = batch_value_sweep_report(&env, &mut fast, &learner, Backup::Greedy, 1e-7, 300);
        let rs = naive_sweep_report(&env, &mut slow, &learner, Backup::Greedy, 1e-7, 300);
        assert_eq!(rf, rs);
        assert_eq!(fast.raw(), slow.raw());
    }

    #[test]
    fn warm_start_converges_faster() {
        let env = Ridge { n: 31, peak: 11 };
        let learner = QLearning::new(0.5, 0.9);
        let mut cold = QTable::new(31, 3);
        let cold_passes = batch_value_sweep(&env, &mut cold, &learner, 1e-4, 10_000);
        // Re-run from the converged table: should stop almost immediately.
        let mut warm = QTable::new(31, 3);
        warm.copy_from(&cold);
        let warm_passes = batch_value_sweep(&env, &mut warm, &learner, 1e-4, 10_000);
        assert!(
            warm_passes < cold_passes,
            "warm {warm_passes} vs cold {cold_passes}"
        );
    }
}
