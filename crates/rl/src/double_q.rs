//! Double Q-learning (van Hasselt, 2010) — an ablation against
//! maximization bias.
//!
//! Plain Q-learning's `max` backup systematically over-estimates state
//! values under noisy or misspecified rewards; in the RAC setting that
//! bias is what makes the agent chase optimistic regression artifacts.
//! Double Q-learning decouples action *selection* from action
//! *evaluation* using two tables, removing the bias at the cost of
//! slower propagation.

use simkernel::Pcg64;

use crate::qtable::{QLearning, QTable};

/// A pair of Q-tables updated with the Double Q-learning rule.
///
/// # Example
///
/// ```
/// use rl::DoubleQ;
/// use rl::QLearning;
/// use simkernel::Pcg64;
///
/// let mut dq = DoubleQ::new(4, 2);
/// let learner = QLearning::new(0.5, 0.9);
/// let mut rng = Pcg64::seed_from_u64(1);
/// dq.update(&learner, 0, 1, 1.0, 2, &mut rng);
/// assert!(dq.combined_q(0, 1) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleQ {
    a: QTable,
    b: QTable,
}

impl DoubleQ {
    /// Creates a zero-initialized pair.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(states: usize, actions: usize) -> Self {
        DoubleQ {
            a: QTable::new(states, actions),
            b: QTable::new(states, actions),
        }
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.a.states()
    }

    /// Number of actions.
    pub fn actions(&self) -> usize {
        self.a.actions()
    }

    /// The mean of the two tables' values — the quantity to act on.
    pub fn combined_q(&self, s: usize, a: usize) -> f64 {
        0.5 * (self.a.get(s, a) + self.b.get(s, a))
    }

    /// The greedy action under the combined value.
    pub fn best_action(&self, s: usize) -> usize {
        let mut best = 0;
        for a in 1..self.actions() {
            if self.combined_q(s, a) > self.combined_q(s, best) {
                best = a;
            }
        }
        best
    }

    /// One Double Q-learning update: a fair coin picks which table is
    /// updated; the *other* table evaluates the greedy action of the
    /// updated one:
    ///
    /// `Q_A(s,a) += α · (r + γ · Q_B(s', argmax_a' Q_A(s',a')) − Q_A(s,a))`
    ///
    /// Returns the absolute change.
    pub fn update(
        &mut self,
        learner: &QLearning,
        s: usize,
        a: usize,
        r: f64,
        s2: usize,
        rng: &mut Pcg64,
    ) -> f64 {
        if rng.chance(0.5) {
            let a_star = self.a.best_action(s2);
            let next_value = self.b.get(s2, a_star);
            learner.update_toward(&mut self.a, s, a, r, next_value)
        } else {
            let b_star = self.b.best_action(s2);
            let next_value = self.a.get(s2, b_star);
            learner.update_toward(&mut self.b, s, a, r, next_value)
        }
    }

    /// Collapses the pair into a single table of combined values.
    pub fn into_combined(self) -> QTable {
        let mut q = QTable::new(self.states(), self.actions());
        for s in 0..self.states() {
            for a in 0..self.actions() {
                q.set(s, a, self.combined_q(s, a));
            }
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-state MDP with noisy rewards from state 1's many actions —
    /// the canonical maximization-bias example: from state 0, action 0
    /// ends the episode with reward 0; action 1 moves to state 1, whose
    /// actions pay noisy rewards with a *negative* mean. Plain
    /// Q-learning overrates state 1; Double Q does not.
    fn run_bias_experiment(double: bool, seed: u64) -> f64 {
        let learner = QLearning::new(0.1, 0.95);
        let mut rng = Pcg64::seed_from_u64(seed);
        let noisy = |rng: &mut Pcg64| -0.1 + (rng.f64() - 0.5) * 2.0;
        const TERMINAL: usize = 2;
        let mut dq = DoubleQ::new(3, 8);
        let mut q = QTable::new(3, 8);
        for _ in 0..3_000 {
            // From state 0: evaluate the "enter the casino" action 1.
            let r = 0.0;
            if double {
                dq.update(&learner, 0, 1, r, 1, &mut rng);
            } else {
                learner.update(&mut q, 0, 1, r, 1);
            }
            // From state 1: a random action with noisy reward, terminal.
            let a = rng.below(8) as usize;
            let nr = noisy(&mut rng);
            if double {
                dq.update(&learner, 1, a, nr, TERMINAL, &mut rng);
            } else {
                learner.update(&mut q, 1, a, nr, TERMINAL);
            }
        }
        if double {
            dq.combined_q(0, 1)
        } else {
            q.get(0, 1)
        }
    }

    #[test]
    fn double_q_reduces_maximization_bias() {
        // The true value of entering state 1 is γ·(−0.1) < 0.
        let mut plain_sum = 0.0;
        let mut double_sum = 0.0;
        for seed in 0..5 {
            plain_sum += run_bias_experiment(false, seed);
            double_sum += run_bias_experiment(true, seed);
        }
        let plain = plain_sum / 5.0;
        let double = double_sum / 5.0;
        assert!(
            double < plain,
            "double-Q ({double:.3}) should estimate lower than plain Q ({plain:.3})"
        );
        assert!(
            plain > 0.0,
            "plain Q should show positive bias here, got {plain:.3}"
        );
    }

    #[test]
    fn combined_value_and_best_action() {
        let mut dq = DoubleQ::new(2, 3);
        let learner = QLearning::new(1.0, 0.0);
        let mut rng = Pcg64::seed_from_u64(3);
        for _ in 0..50 {
            dq.update(&learner, 0, 2, 5.0, 1, &mut rng);
        }
        assert!(dq.combined_q(0, 2) > 4.0);
        assert_eq!(dq.best_action(0), 2);
        let q = dq.clone().into_combined();
        assert!((q.get(0, 2) - dq.combined_q(0, 2)).abs() < 1e-6);
    }

    #[test]
    fn update_returns_delta() {
        let mut dq = DoubleQ::new(2, 2);
        let learner = QLearning::new(0.5, 0.9);
        let mut rng = Pcg64::seed_from_u64(4);
        let delta = dq.update(&learner, 0, 0, 2.0, 1, &mut rng);
        assert!((delta - 1.0).abs() < 1e-6, "alpha 0.5 × target 2.0");
    }
}
