//! Mixed-radix index space for discrete state lattices.

/// A multi-dimensional discrete lattice with dense mixed-radix indexing.
///
/// RAC discretizes each configuration parameter to a handful of levels;
/// a full configuration is then a coordinate vector, and `IndexSpace`
/// maps it to/from a dense `usize` suitable for indexing a [`crate::QTable`].
///
/// # Example
///
/// ```
/// use rl::IndexSpace;
///
/// let space = IndexSpace::new(vec![3, 4, 2]);
/// assert_eq!(space.len(), 24);
/// let idx = space.encode(&[2, 1, 0]);
/// assert_eq!(space.decode(idx), vec![2, 1, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexSpace {
    dims: Vec<usize>,
    len: usize,
}

impl IndexSpace {
    /// Creates a space with the given per-dimension cardinalities.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty, any dimension is zero, or the total
    /// size overflows `usize`.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "need at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        let len = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .expect("index space too large");
        IndexSpace { dims, len }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims.len()
    }

    /// Cardinality of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn dim(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// Total number of lattice points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false` (spaces are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Encodes coordinates into a dense index (row-major: the last
    /// dimension varies fastest).
    ///
    /// # Panics
    ///
    /// Panics if `coords` has the wrong length or any coordinate is out
    /// of range.
    pub fn encode(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len(), "coordinate arity mismatch");
        let mut idx = 0;
        for (c, d) in coords.iter().zip(&self.dims) {
            assert!(c < d, "coordinate {c} out of range (dim {d})");
            idx = idx * d + c;
        }
        idx
    }

    /// Decodes a dense index into coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn decode(&self, index: usize) -> Vec<usize> {
        let mut coords = vec![0; self.dims.len()];
        self.decode_into(index, &mut coords);
        coords
    }

    /// Decodes into a caller-provided buffer (allocation-free hot path).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()` or the buffer has the wrong
    /// length.
    pub fn decode_into(&self, index: usize, coords: &mut [usize]) {
        assert!(index < self.len, "index {index} out of range");
        assert_eq!(coords.len(), self.dims.len(), "buffer arity mismatch");
        let mut rest = index;
        for (c, d) in coords.iter_mut().zip(&self.dims).rev() {
            *c = rest % d;
            rest /= d;
        }
    }

    /// Iterates over all lattice points in index order.
    pub fn iter(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        (0..self.len).map(|i| self.decode(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_round_trip_exhaustive() {
        let space = IndexSpace::new(vec![2, 3, 5]);
        for i in 0..space.len() {
            assert_eq!(space.encode(&space.decode(i)), i);
        }
    }

    #[test]
    fn encoding_is_row_major() {
        let space = IndexSpace::new(vec![3, 4]);
        assert_eq!(space.encode(&[0, 0]), 0);
        assert_eq!(space.encode(&[0, 1]), 1);
        assert_eq!(space.encode(&[1, 0]), 4);
        assert_eq!(space.encode(&[2, 3]), 11);
    }

    #[test]
    fn iter_covers_everything_once() {
        let space = IndexSpace::new(vec![2, 2, 2]);
        let all: Vec<Vec<usize>> = space.iter().collect();
        assert_eq!(all.len(), 8);
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(distinct.len(), 8);
    }

    #[test]
    fn single_dimension_space() {
        let space = IndexSpace::new(vec![7]);
        assert_eq!(space.len(), 7);
        assert_eq!(space.encode(&[3]), 3);
        assert_eq!(space.dims(), 1);
        assert_eq!(space.dim(0), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn encode_out_of_range_panics() {
        IndexSpace::new(vec![2, 2]).encode(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn encode_wrong_arity_panics() {
        IndexSpace::new(vec![2, 2]).encode(&[0]);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn overflow_panics() {
        IndexSpace::new(vec![usize::MAX, 3]);
    }

    proptest! {
        #[test]
        fn prop_round_trip(dims in proptest::collection::vec(1usize..6, 1..6), seed: u64) {
            let space = IndexSpace::new(dims);
            let idx = (seed as usize) % space.len();
            prop_assert_eq!(space.encode(&space.decode(idx)), idx);
        }

        #[test]
        fn prop_decode_in_bounds(dims in proptest::collection::vec(1usize..6, 1..6), seed: u64) {
            let space = IndexSpace::new(dims);
            let coords = space.decode((seed as usize) % space.len());
            for (c, d) in coords.iter().zip(0..space.dims()) {
                prop_assert!(*c < space.dim(d));
            }
        }
    }
}
