//! Bounded history of observed transitions.

use std::collections::VecDeque;

/// One observed transition `(s, a, r, s')`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// State the action was taken in.
    pub state: usize,
    /// Action taken.
    pub action: usize,
    /// Immediate reward received.
    pub reward: f64,
    /// Resulting state.
    pub next_state: usize,
}

/// A bounded FIFO log of transitions, used by the RAC agent's batch
/// retraining to replay recent measured experience on top of the
/// model-predicted rewards.
///
/// # Example
///
/// ```
/// use rl::{ExperienceLog, Transition};
///
/// let mut log = ExperienceLog::new(2);
/// for i in 0..3 {
///     log.record(Transition { state: i, action: 0, reward: 0.0, next_state: i + 1 });
/// }
/// assert_eq!(log.len(), 2);
/// assert_eq!(log.iter().next().unwrap().state, 1); // oldest was evicted
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExperienceLog {
    buf: VecDeque<Transition>,
    capacity: usize,
}

impl ExperienceLog {
    /// Creates a log retaining at most `capacity` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        ExperienceLog {
            buf: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends a transition, evicting the oldest when full.
    pub fn record(&mut self, t: Transition) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(t);
    }

    /// The retention bound the log was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Transition> {
        self.buf.iter()
    }

    /// The most recent transition, if any.
    pub fn last(&self) -> Option<&Transition> {
        self.buf.back()
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(state: usize) -> Transition {
        Transition {
            state,
            action: 0,
            reward: 1.0,
            next_state: state + 1,
        }
    }

    #[test]
    fn records_in_order() {
        let mut log = ExperienceLog::new(10);
        log.record(t(1));
        log.record(t(2));
        let states: Vec<usize> = log.iter().map(|x| x.state).collect();
        assert_eq!(states, vec![1, 2]);
        assert_eq!(log.last().unwrap().state, 2);
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut log = ExperienceLog::new(3);
        for i in 0..5 {
            log.record(t(i));
        }
        let states: Vec<usize> = log.iter().map(|x| x.state).collect();
        assert_eq!(states, vec![2, 3, 4]);
    }

    #[test]
    fn clear_empties() {
        let mut log = ExperienceLog::new(2);
        log.record(t(0));
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.last(), None);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        ExperienceLog::new(0);
    }
}
