//! Quickstart: let the RAC agent tune a simulated three-tier website.
//!
//! ```text
//! cargo run --release -p rac --example quickstart
//! ```
//!
//! Builds the simulated TPC-W testbed, attaches an (uninitialized) RAC
//! agent, and watches response time improve over 30 tuning iterations.

use rac::{Experiment, RacAgent, RacSettings, SystemContext};
use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::SystemSpec;

fn main() {
    // The system under tuning: 600 emulated browsers running the TPC-W
    // shopping mix against Apache/Tomcat/MySQL on two Xen-style VMs.
    let spec = SystemSpec::default().with_clients(600).with_seed(1);
    let context = SystemContext::new(Mix::Shopping, ResourceLevel::Level1);

    // One measurement iteration = 5 simulated minutes, as in the paper.
    let experiment = Experiment::new(spec)
        .with_interval(SimDuration::from_secs(300))
        .with_warmup(SimDuration::from_secs(600))
        .then(context, 30);

    // An agent learning purely online (no offline initialization —
    // see examples/policy_initialization.rs for the bootstrapped agent).
    let mut agent = RacAgent::new(RacSettings::default());

    println!("tuning {context} for 30 iterations…\n");
    println!(
        "{:>5} {:>12} {:>10}  configuration",
        "iter", "resp (ms)", "xput (rps)"
    );
    let series = experiment.run(&mut agent);
    for r in &series {
        println!(
            "{:>5} {:>12.0} {:>10.1}  {}",
            r.iteration, r.response_ms, r.throughput_rps, r.config
        );
    }

    let first5 = rac::series_mean(&series[..5]);
    let last5 = rac::series_mean(&series[series.len() - 5..]);
    println!(
        "\nmean response time: first 5 iterations {first5:.0} ms -> last 5 iterations {last5:.0} ms"
    );
    println!("({} decision iterations)", agent.iterations());
}
