//! Capacity planning with the simulator alone (no RL): how should
//! `MaxClients` be set for each VM provisioning level?
//!
//! ```text
//! cargo run --release -p rac --example capacity_planning
//! ```
//!
//! Reproduces the paper's Section-2 motivation interactively: sweeps
//! `MaxClients` at each VM level and reports the preferred setting —
//! including the counter-intuitive result that a *stronger* VM prefers a
//! *smaller* worker cap.

use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::{measure_config, Param, ServerConfig, SystemSpec};

fn main() {
    let sweep: Vec<u32> = (1..=12).map(|i| i * 50).collect();
    println!(
        "sweeping MaxClients over {sweep:?}\nfor 600 shopping-mix clients at each VM level…\n"
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "MaxClients", "Level-1", "Level-2", "Level-3"
    );

    let mut best: Vec<(u32, f64)> = vec![(0, f64::INFINITY); 3];
    for &mc in &sweep {
        let cfg = ServerConfig::default()
            .with(Param::MaxClients, mc)
            .expect("in range");
        let mut row = format!("{mc:>10}");
        for (i, level) in ResourceLevel::ALL.iter().enumerate() {
            let spec = SystemSpec::default()
                .with_clients(600)
                .with_mix(Mix::Shopping)
                .with_level(*level)
                .with_seed(4);
            let s = measure_config(
                &spec,
                cfg,
                SimDuration::from_secs(600),
                SimDuration::from_secs(300),
            );
            row.push_str(&format!(" {:>10.0}", s.mean_response_ms));
            if s.mean_response_ms < best[i].1 {
                best[i] = (mc, s.mean_response_ms);
            }
        }
        println!("{row}");
    }

    println!();
    for (level, (mc, rt)) in ResourceLevel::ALL.iter().zip(&best) {
        println!("preferred MaxClients on {level}: {mc} ({rt:.0} ms)");
    }
    if best[0].0 <= best[2].0 {
        println!("\nnote: the optimum does NOT grow with VM capacity — the stronger VM");
        println!("completes requests faster, so fewer concurrent workers are needed");
        println!("(the paper's counter-intuitive Figure-2 finding).");
    }
}
