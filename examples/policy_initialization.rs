//! The policy-initialization pipeline (Algorithm 2), step by step.
//!
//! ```text
//! cargo run --release -p rac --example policy_initialization
//! ```
//!
//! Walks through: parameter grouping → coarse data collection →
//! polynomial-regression prediction → offline RL, then compares the
//! first online iterations of a bootstrapped agent against a cold one
//! (the paper's Figure 7 effect).

use rac::{
    grouping, train_initial_policy, ConfigLattice, Experiment, OfflineSettings, RacAgent,
    RacSettings, Runner, SimMeasurer, SlaReward, SystemContext,
};
use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::SystemSpec;

fn main() {
    let spec = SystemSpec::default().with_clients(600).with_seed(3);
    let context = SystemContext::new(Mix::Shopping, ResourceLevel::Level2);
    let spec_ctx = spec.clone().with_mix(context.mix).with_level(context.level);

    let settings = RacSettings::default();
    let lattice = ConfigLattice::new(settings.online_levels);
    let reward = SlaReward::new(settings.sla_ms);

    // Step 1+2: parameter grouping and coarse data collection.
    let plan = grouping::sampling_plan(3);
    println!(
        "step 1: parameter grouping -> {} groups, sampling plan of {} configurations",
        grouping::GROUP_COUNT,
        plan.len()
    );
    println!(
        "        (instead of {} at full online granularity)",
        lattice.num_states()
    );

    // Steps 2-4 run inside train_initial_policy; the measurer samples
    // the live simulator through the parallel runner, so the whole plan
    // fans out across RAC_THREADS workers.
    let runner = Runner::global();
    println!(
        "step 2: measuring the plan on the simulated testbed ({} worker threads)…",
        runner.threads()
    );
    let started = std::time::Instant::now();
    let measurer = SimMeasurer::new(
        spec_ctx,
        SimDuration::from_secs(600),
        SimDuration::from_secs(240),
    );
    let policy = train_initial_policy(&lattice, reward, OfflineSettings::default(), measurer)
        .expect("fit succeeds on the simulated landscape");
    let stats = runner.cache_stats();
    println!(
        "        {} configurations measured in {:.1}s wall-clock ({} cache hits)",
        stats.misses,
        started.elapsed().as_secs_f64(),
        stats.hits
    );
    println!(
        "step 3: regression fit over group features: r² = {:.3}, rmse = {:.1} ms",
        policy.fit.r_squared, policy.fit.rmse
    );
    println!(
        "        predicted performance for all {} lattice states",
        policy.perf_ms.len()
    );
    println!(
        "step 4: offline RL converged in {} sweep passes\n",
        policy.passes
    );

    // Online comparison: bootstrapped vs cold agent (Figure 7 effect).
    let experiment = Experiment::new(spec)
        .with_interval(SimDuration::from_secs(300))
        .with_warmup(SimDuration::from_secs(600))
        .then(context, 15);

    let mut with_init = RacAgent::with_initial_policy(settings.clone(), &policy);
    let with_series = experiment.run(&mut with_init);
    let mut without_init = RacAgent::new(settings);
    let without_series = experiment.run(&mut without_init);

    println!(
        "{:>5} {:>16} {:>16}",
        "iter", "w/ init (ms)", "w/o init (ms)"
    );
    for (a, b) in with_series.iter().zip(&without_series) {
        println!(
            "{:>5} {:>16.0} {:>16.0}",
            a.iteration, a.response_ms, b.response_ms
        );
    }
    println!(
        "\nmean: w/ initialization {:.0} ms, w/o {:.0} ms",
        rac::series_mean(&with_series),
        rac::series_mean(&without_series)
    );
}
