//! Adaptive tuning across workload and VM changes — the paper's
//! headline scenario.
//!
//! ```text
//! cargo run --release -p rac --example adaptive_tuning
//! ```
//!
//! Trains a small policy library offline (one initial policy per system
//! context), then drives the system through three contexts — a workload
//! mix change at iteration 20 and a VM downgrade at iteration 40 — and
//! shows the agent detecting each change and switching policies.

use rac::{
    build_policy_library, ConfigLattice, Experiment, RacAgent, RacSettings, SlaReward,
    SystemContext, TrainingOptions,
};
use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::SystemSpec;

fn main() {
    let spec = SystemSpec::default().with_clients(600).with_seed(2);
    let contexts = [
        SystemContext::new(Mix::Shopping, ResourceLevel::Level1),
        SystemContext::new(Mix::Ordering, ResourceLevel::Level1), // workload change
        SystemContext::new(Mix::Ordering, ResourceLevel::Level3), // VM reallocation
    ];

    // Offline phase: per-context initial policies (Algorithm 2).
    let settings = RacSettings::default();
    let lattice = ConfigLattice::new(settings.online_levels);
    let reward = SlaReward::new(settings.sla_ms);
    println!("training {} initial policies offline…", contexts.len());
    let options = TrainingOptions {
        warmup: SimDuration::from_secs(300),
        measure: SimDuration::from_secs(180),
        ..TrainingOptions::default()
    };
    let library = build_policy_library(&spec, &contexts, &lattice, reward, options);
    for (ctx, policy) in library.iter() {
        println!(
            "  {ctx}: {} samples, regression r² = {:.3}, offline RL converged in {} passes",
            policy.samples, policy.fit.r_squared, policy.passes
        );
    }

    // Online phase: 20 iterations per context.
    let experiment = Experiment::new(spec)
        .with_interval(SimDuration::from_secs(300))
        .with_warmup(SimDuration::from_secs(600))
        .then(contexts[0], 20)
        .then(contexts[1], 20)
        .then(contexts[2], 20);

    let mut agent = RacAgent::with_policy_library(settings, library);
    println!(
        "\n{:>5} {:>10} {:>9}  notes",
        "iter", "resp (ms)", "switches"
    );
    let mut last_switches = 0;
    for r in experiment.run(&mut agent) {
        let switches = agent.policy_switches();
        let mut notes = String::new();
        if r.iteration == 20 {
            notes.push_str("<- workload changed to ordering");
        }
        if r.iteration == 40 {
            notes.push_str("<- VM downgraded to Level-3");
        }
        if switches > last_switches {
            notes.push_str(" [policy switch]");
            last_switches = switches;
        }
        println!(
            "{:>5} {:>10.0} {:>9}  {notes}",
            r.iteration, r.response_ms, switches
        );
    }
    println!("\ntotal policy switches: {}", agent.policy_switches());
}
