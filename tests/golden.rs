//! Golden-figure smoke tests.
//!
//! Reduced-size (short-duration, coarse-sweep) renderings of Table 1,
//! Figure 1 and Figure 2 are compared cell-by-cell against checked-in
//! golden CSVs with a relative tolerance, so the paper's qualitative
//! shapes — the concave response-time curve over MaxClients, the
//! optimum ordering across VM levels, cross-workload specialization —
//! stay pinned in CI while small algorithmic refinements remain
//! possible.
//!
//! To regenerate the goldens after an intentional behavior change:
//!
//! ```text
//! RAC_UPDATE_GOLDEN=1 cargo test -p rac-integration --test golden
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use rac::runner::{MeasureJob, Runner};
use rac::{grouping, maxclients_sweep, SimMeasurer};
use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::{Param, ServerConfig, SystemSpec};

/// Numeric cells may drift this much (relative) before the golden fails.
const REL_TOLERANCE: f64 = 0.05;

const WARMUP: SimDuration = SimDuration::from_secs(60);
const MEASURE: SimDuration = SimDuration::from_secs(60);

/// The canonical testbed at reduced measurement scale: same client
/// population and seed as the figures binary, much shorter intervals.
fn spec() -> SystemSpec {
    SystemSpec::default().with_clients(600).with_seed(42)
}

fn golden_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden"))
}

/// Compares `actual` against the checked-in golden CSV, cell by cell:
/// numeric cells within [`REL_TOLERANCE`], everything else exactly.
/// With `RAC_UPDATE_GOLDEN` set, rewrites the golden instead.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("RAC_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write golden");
        eprintln!("updated golden {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with RAC_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    let (exp_lines, act_lines): (Vec<&str>, Vec<&str>) =
        (expected.lines().collect(), actual.lines().collect());
    assert_eq!(
        exp_lines.len(),
        act_lines.len(),
        "{name}: row count changed (expected {}, got {})\n--- actual ---\n{actual}",
        exp_lines.len(),
        act_lines.len()
    );
    for (row, (e_line, a_line)) in exp_lines.iter().zip(&act_lines).enumerate() {
        let (e_cells, a_cells): (Vec<&str>, Vec<&str>) =
            (e_line.split(',').collect(), a_line.split(',').collect());
        assert_eq!(
            e_cells.len(),
            a_cells.len(),
            "{name} row {row}: column count changed"
        );
        for (col, (e, a)) in e_cells.iter().zip(&a_cells).enumerate() {
            match (e.parse::<f64>(), a.parse::<f64>()) {
                (Ok(ev), Ok(av)) => {
                    let scale = ev.abs().max(1.0);
                    assert!(
                        (av - ev).abs() <= REL_TOLERANCE * scale,
                        "{name} row {row} col {col}: {av} drifted from golden {ev} \
                         (> {:.0}% relative)",
                        REL_TOLERANCE * 100.0
                    );
                }
                _ => assert_eq!(e, a, "{name} row {row} col {col}: text cell changed"),
            }
        }
    }
}

// --------------------------------------------------------------------
// Table 1 — static parameter table (exact; no simulation involved)
// --------------------------------------------------------------------

#[test]
fn table1_parameter_space_matches_golden() {
    let mut csv = String::from("tier,parameter,lo,hi,default\n");
    for p in Param::ALL {
        let (lo, hi) = p.range();
        let _ = writeln!(
            csv,
            "{},{},{lo},{hi},{}",
            p.tier(),
            p.name(),
            p.default_value()
        );
    }
    check_golden("table1.csv", &csv);
}

// --------------------------------------------------------------------
// Figure 1 — cross-workload specialization (reduced sampling plan)
// --------------------------------------------------------------------

#[test]
fn fig1_cross_workload_matches_golden() {
    let spec = spec();
    let mixes = [Mix::Ordering, Mix::Shopping, Mix::Browsing];

    // Best configuration per mix from the coarse 3-level grouped plan.
    let plan = grouping::sampling_plan(3);
    let configs: Vec<ServerConfig> = plan.iter().map(|(_, config)| *config).collect();
    let tuned: Vec<ServerConfig> = mixes
        .iter()
        .map(|&mix| {
            let measurer = SimMeasurer::new(spec.clone().with_mix(mix), WARMUP, MEASURE);
            let samples = measurer.sample_batch(&configs);
            configs
                .iter()
                .zip(&samples)
                .min_by(|a, b| a.1.mean_response_ms.total_cmp(&b.1.mean_response_ms))
                .map(|(cfg, _)| *cfg)
                .expect("non-empty plan")
        })
        .collect();

    // Run-mix x tuned-config cross, one parallel batch.
    let jobs: Vec<MeasureJob> = mixes
        .iter()
        .flat_map(|&run_mix| tuned.iter().map(move |&cfg| (run_mix, cfg)))
        .map(|(run_mix, cfg)| MeasureJob::new(spec.clone().with_mix(run_mix), cfg, WARMUP, MEASURE))
        .collect();
    let samples = Runner::global().run(&jobs);

    let mut csv = String::from("workload,ordering-best,shopping-best,browsing-best\n");
    let mut grid = vec![vec![0.0f64; mixes.len()]; mixes.len()];
    for (r, &run_mix) in mixes.iter().enumerate() {
        let _ = write!(csv, "{run_mix}");
        for c in 0..mixes.len() {
            let ms = samples[r * mixes.len() + c].mean_response_ms;
            grid[r][c] = ms;
            let _ = write!(csv, ",{ms:.1}");
        }
        csv.push('\n');
    }

    // Qualitative pin: a configuration tuned for some workload must be
    // competitive on its own workload — the diagonal cell never loses
    // badly to the best cell of its row (the paper's Figure-1 point is
    // that *foreign* tuning can lose badly, not the native one).
    for (r, &run_mix) in mixes.iter().enumerate() {
        let row_best = grid[r].iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            grid[r][r] <= row_best * 1.10 + 1.0,
            "{run_mix}: natively-tuned {:.1}ms loses to row best {row_best:.1}ms",
            grid[r][r]
        );
    }

    check_golden("fig1.csv", &csv);
}

// --------------------------------------------------------------------
// Figure 2 — MaxClients sweep across VM levels (reduced sweep)
// --------------------------------------------------------------------

#[test]
fn fig2_maxclients_sweep_matches_golden() {
    let sweep: Vec<u32> = vec![5, 100, 200, 300, 450, 600];
    let rows = maxclients_sweep(&spec(), &ResourceLevel::ALL, &sweep, WARMUP, MEASURE);

    let mut csv = String::from("MaxClients,Level-1,Level-2,Level-3\n");
    let mut series = vec![Vec::new(); ResourceLevel::ALL.len()];
    for (m, &mc) in sweep.iter().enumerate() {
        let _ = write!(csv, "{mc}");
        for (i, _) in ResourceLevel::ALL.iter().enumerate() {
            let (_, _, s) = rows[i * sweep.len() + m];
            series[i].push(s.mean_response_ms);
            let _ = write!(csv, ",{:.1}", s.mean_response_ms);
        }
        csv.push('\n');
    }

    let optimum = |level: usize| -> (u32, f64) {
        let (idx, &best) = series[level]
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty sweep");
        (sweep[idx], best)
    };

    // Concavity: an undersized MaxClients chokes the curve — the
    // left-most sweep point must sit well above each level's optimum,
    // so the optimum is never at the starved extreme.
    for (i, level) in ResourceLevel::ALL.iter().enumerate() {
        let (best_mc, best_ms) = optimum(i);
        assert!(
            series[i][0] > best_ms * 1.2,
            "{level:?}: MaxClients=5 ({:.1}ms) does not choke vs optimum {best_ms:.1}ms",
            series[i][0]
        );
        assert!(
            best_mc > sweep[0],
            "{level:?}: optimum sits at the starved extreme"
        );
    }

    // Optimum ordering across VM levels: stronger platforms achieve a
    // strictly better best response time, and the weakest platform
    // needs at least as large an admission limit as the stronger ones
    // before its curve bottoms out (Figure 2's point: the preferred
    // MaxClients depends on the VM configuration).
    let (mc1, ms1) = optimum(0);
    let (mc2, ms2) = optimum(1);
    let (mc3, ms3) = optimum(2);
    assert!(
        ms1 < ms2 && ms2 < ms3,
        "optimum response must degrade with VM level: {ms1:.1} / {ms2:.1} / {ms3:.1}"
    );
    assert!(
        mc1 <= mc3 && mc2 <= mc3,
        "weakest platform must not prefer the smallest MaxClients: {mc1}/{mc2}/{mc3}"
    );

    check_golden("fig2.csv", &csv);
}
