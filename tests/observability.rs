//! Live-observability integration tests.
//!
//! The plane's hard invariant is pinned here: wall-clock telemetry
//! (metrics, the self-profiler, the embedded HTTP server) feeds
//! observers only — a run with `--serve` and profiling on produces
//! byte-identical CSV, trace, and checkpoint output to a bare run, at
//! any runner thread count.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use obs::trace::{self, TraceWriter};
use rac::runner::Runner;
use rac::{
    paper_contexts, train_initial_policy, ConfigLattice, OfflineSettings, PolicyLibrary,
    SimMeasurer, SlaReward,
};
use rac_bench::checkpoint::{run_tuners_checkpointed, CheckpointOptions, LineupOutcome};
use rac_bench::scenario::{resolve, run_tuners, scenario_table};
use rac_bench::{paper_system_spec, ONLINE_LEVELS, SLA_MS};
use simkernel::SimDuration;

/// Small deterministic policy library for the shopping @ Level-1
/// context, trained on an explicit runner so tests can vary the thread
/// count.
fn library_on(runner: &'static Runner) -> PolicyLibrary {
    let ctx = paper_contexts()[0];
    let lattice = ConfigLattice::new(ONLINE_LEVELS);
    let spec = paper_system_spec().with_mix(ctx.mix).with_level(ctx.level);
    let measurer = SimMeasurer::on_runner(
        runner,
        spec,
        SimDuration::from_secs(60),
        SimDuration::from_secs(60),
    );
    let settings = OfflineSettings {
        group_levels: 2,
        ..OfflineSettings::default()
    };
    let policy = train_initial_policy(&lattice, SlaReward::new(SLA_MS), settings, measurer)
        .expect("offline landscape fits");
    let mut lib = PolicyLibrary::new();
    lib.insert(ctx, policy);
    lib
}

/// Minimal HTTP/1.0 GET against the embedded server; returns (status,
/// body).
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to obs server");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn scratch_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rac-obs-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

/// The tentpole invariant: a diurnal run with the live plane fully on
/// (HTTP server answering, self-profiler recording) is byte-identical —
/// series CSV and decision trace — to a bare run, even with the policy
/// library trained at a different runner thread count (1 vs 8).
/// Endpoint liveness is checked on the same server: /metrics parses as
/// Prometheus text, /healthz reports run state, /profile serves the
/// folded dump.
#[test]
fn serve_and_profiling_leave_run_bytes_identical() {
    static RUNNER_1: OnceLock<Runner> = OnceLock::new();
    static RUNNER_8: OnceLock<Runner> = OnceLock::new();
    let scn = resolve("diurnal").expect("bundled").scaled(1, 3);
    let run = |library: &PolicyLibrary| {
        let writer = Arc::new(TraceWriter::new());
        let mut csv = String::new();
        trace::with_writer(&writer, || {
            let series = run_tuners(&scn, library);
            csv = scenario_table(&scn, &series).render_csv();
        });
        (csv, writer.serialize())
    };

    // Bare run: profiler off, no server.
    obs::profile::set_enabled(false);
    let (csv_bare, trace_bare) = run(&library_on(RUNNER_1.get_or_init(|| Runner::new(1))));

    // Live run: server answering, profiler on, 8-thread library.
    let server = obs::ObsServer::start("127.0.0.1:0").expect("bind observability server");
    let addr = server.local_addr();
    obs::profile::set_enabled(true);
    let (csv_live, trace_live) = run(&library_on(RUNNER_8.get_or_init(|| Runner::new(8))));

    assert_eq!(
        csv_bare, csv_live,
        "series CSV changed under --serve + profiling"
    );
    assert_eq!(
        trace_bare, trace_live,
        "decision trace changed under --serve + profiling"
    );

    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    obs::export::validate_prometheus(&metrics)
        .unwrap_or_else(|e| panic!("/metrics is not valid Prometheus text: {e}"));
    assert!(
        metrics.contains("rac_span_total_measure"),
        "live metrics must include the phase-span counters:\n{metrics}"
    );

    let (status, health) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    for key in ["\"state\"", "\"iteration\"", "\"breaker_open\""] {
        assert!(health.contains(key), "/healthz missing {key}: {health}");
    }

    let (status, _profile) = http_get(addr, "/profile");
    assert_eq!(status, 200);

    let (status, _) = http_get(addr, "/no-such-route");
    assert_eq!(status, 404);
}

/// Checkpoint bytes are part of the invariant too: the snapshot a
/// checkpointed run leaves on disk is identical with and without the
/// profiler, and so is the completed series.
#[test]
fn profiling_leaves_checkpoint_snapshot_bytes_identical() {
    static RUNNER: OnceLock<Runner> = OnceLock::new();
    let library = library_on(RUNNER.get_or_init(|| Runner::new(2)));
    let scn = resolve("flash-crowd").expect("bundled").scaled(1, 3);
    let run = |tag: &str, profiled: bool| {
        obs::profile::set_enabled(profiled);
        let path = scratch_path(&format!("ckpt-{tag}.bin"));
        let _ = std::fs::remove_file(&path);
        let plan = CheckpointOptions {
            path: path.clone(),
            every: 2,
            stop_after: None,
        };
        let outcome =
            run_tuners_checkpointed(&scn, &library, &plan, None).expect("checkpointed run");
        let LineupOutcome::Complete(series) = outcome else {
            panic!("run must complete (stop_after is None)");
        };
        let bytes = std::fs::read(&path).expect("snapshot written");
        let _ = std::fs::remove_file(&path);
        (scenario_table(&scn, &series).render_csv(), bytes)
    };
    let (csv_bare, snap_bare) = run("bare", false);
    let (csv_prof, snap_prof) = run("prof", true);
    assert_eq!(csv_bare, csv_prof, "series changed under profiling");
    assert_eq!(
        snap_bare, snap_prof,
        "checkpoint snapshot bytes changed under profiling"
    );
}

/// `figures profile` coverage: a profiled checkpointed run attributes
/// wall-clock to every pipeline phase — measure, the tuner with its
/// nested sweep and guardrail, and checkpoint encoding — and the folded
/// dump is flamegraph-shaped (`path<space>self_us` per line).
#[test]
fn folded_profile_covers_pipeline_phases() {
    static RUNNER: OnceLock<Runner> = OnceLock::new();
    let library = library_on(RUNNER.get_or_init(|| Runner::new(2)));
    let scn = resolve("diurnal").expect("bundled").scaled(1, 3);
    obs::profile::set_enabled(true);
    obs::profile::reset();
    let path = scratch_path("ckpt-folded.bin");
    let _ = std::fs::remove_file(&path);
    let plan = CheckpointOptions {
        path: path.clone(),
        every: 2,
        stop_after: None,
    };
    run_tuners_checkpointed(&scn, &library, &plan, None).expect("checkpointed run");
    let _ = std::fs::remove_file(&path);

    let folded = obs::profile::folded();
    assert!(!folded.is_empty(), "folded dump must not be empty");
    for line in folded.lines() {
        let (frames, value) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!frames.is_empty(), "empty frame path in {line:?}");
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("self-time not integer µs in {line:?}"));
    }
    for phase in ["measure", "tuner", "sweep", "guardrail", "checkpoint"] {
        assert!(
            folded.contains(phase),
            "folded dump must attribute the {phase} phase:\n{folded}"
        );
    }
    // The sweep and guardrail run inside the tuner, so their paths are
    // nested under it.
    assert!(
        folded.lines().any(|l| l.starts_with("tuner;")),
        "sweep/guardrail must nest under the tuner:\n{folded}"
    );
}
