//! Scenario-engine integration tests.
//!
//! Two guarantees are pinned here, both flowing through the same
//! helpers the `figures scenario` subcommand uses:
//!
//! 1. **Golden figure** — the quick-scale diurnal scenario produces a
//!    byte-exact CSV (no tolerance: a scenario run is a pure function of
//!    (spec, scenario, seed), so any drift is a real behavior change).
//!    Regenerate after an intentional change with:
//!
//!    ```text
//!    RAC_UPDATE_GOLDEN=1 cargo test -p rac-integration --test scenario
//!    ```
//!
//! 2. **Determinism** — the full flash-crowd run (series CSV *and* the
//!    decision/scenario-event trace) is bit-identical whether the
//!    offline policy library was trained on 1 or 8 runner threads; the
//!    online run itself is sequential by construction.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use obs::trace::{self, TraceWriter};
use rac::runner::Runner;
use rac::{
    paper_contexts, train_initial_policy, ConfigLattice, OfflineSettings, PolicyLibrary,
    SimMeasurer, SlaReward,
};
use rac_bench::scenario::{resolve, run_tuners, scenario_table};
use rac_bench::{paper_system_spec, ONLINE_LEVELS, SLA_MS};
use simkernel::SimDuration;

/// Trains a small deterministic policy library for the shopping @
/// Level-1 context (where every bundled scenario starts) on an explicit
/// runner, so tests can compare libraries built at different thread
/// counts.
fn library_on(runner: &'static Runner) -> PolicyLibrary {
    let ctx = paper_contexts()[0];
    let lattice = ConfigLattice::new(ONLINE_LEVELS);
    let spec = paper_system_spec().with_mix(ctx.mix).with_level(ctx.level);
    let measurer = SimMeasurer::on_runner(
        runner,
        spec,
        SimDuration::from_secs(60),
        SimDuration::from_secs(60),
    );
    let settings = OfflineSettings {
        group_levels: 2,
        ..OfflineSettings::default()
    };
    let policy = train_initial_policy(&lattice, SlaReward::new(SLA_MS), settings, measurer)
        .expect("offline landscape fits");
    let mut lib = PolicyLibrary::new();
    lib.insert(ctx, policy);
    lib
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden")).join(name)
}

/// Exact-bytes golden comparison (scenario runs are deterministic, so
/// unlike the figure goldens there is no numeric tolerance). With
/// `RAC_UPDATE_GOLDEN` set, rewrites the golden instead.
fn check_golden_exact(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("RAC_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write golden");
        eprintln!("updated golden {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with RAC_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name}: scenario CSV drifted from the pinned golden \
         (runs are deterministic — regenerate only for intentional changes)"
    );
}

#[test]
fn diurnal_quick_scenario_matches_pinned_golden() {
    static RUNNER: OnceLock<Runner> = OnceLock::new();
    let library = library_on(RUNNER.get_or_init(|| Runner::new(4)));
    // The same 1/3 reduction `figures scenario diurnal --quick` applies.
    let scn = resolve("diurnal").expect("bundled").scaled(1, 3);
    let series = run_tuners(&scn, &library);
    let table = scenario_table(&scn, &series);
    assert_eq!(table.len(), scn.iterations());
    check_golden_exact("scenario-diurnal-quick.csv", &table.render_csv());
}

#[test]
fn flash_crowd_run_is_bit_identical_across_runner_thread_counts() {
    static RUNNER_1: OnceLock<Runner> = OnceLock::new();
    static RUNNER_8: OnceLock<Runner> = OnceLock::new();
    let run = |runner: &'static Runner| {
        let library = library_on(runner);
        let scn = resolve("flash-crowd").expect("bundled");
        let writer = Arc::new(TraceWriter::new());
        let mut csv = String::new();
        trace::with_writer(&writer, || {
            let series = run_tuners(&scn, &library);
            csv = scenario_table(&scn, &series).render_csv();
        });
        (csv, writer.serialize())
    };
    let (csv_1, trace_1) = run(RUNNER_1.get_or_init(|| Runner::new(1)));
    let (csv_8, trace_8) = run(RUNNER_8.get_or_init(|| Runner::new(8)));
    assert_eq!(
        csv_1, csv_8,
        "flash-crowd series diverged between 1- and 8-thread library training"
    );
    assert_eq!(
        trace_1, trace_8,
        "flash-crowd trace diverged between 1- and 8-thread library training"
    );
    assert!(
        trace_1.contains("scenario_event"),
        "trace must record the timeline injections"
    );
    // The spike must actually be offered: the client column exceeds the
    // scenario's base population somewhere mid-run.
    let scn = resolve("flash-crowd").unwrap();
    let base = scn.clients.expect("flash-crowd pins clients");
    let peak = csv_1
        .lines()
        .skip(1)
        .filter_map(|l| l.split(',').nth(2))
        .filter_map(|c| c.parse::<usize>().ok())
        .max()
        .unwrap_or(0);
    assert!(
        peak > base,
        "flash crowd never materialized: peak {peak} <= base {base}"
    );
}
