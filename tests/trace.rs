//! Decision-trace contract tests.
//!
//! The JSONL trace is the diffable record of a tuning session: the
//! suite pins (1) lossless serialization — parse then re-serialize is
//! byte-identical — and (2) determinism — a session traced at
//! `RAC_THREADS=1` and `RAC_THREADS=8` yields bit-identical JSONL,
//! which is what makes traces comparable across machines and CI matrix
//! legs. A light schema check keeps the emitted kinds in sync with
//! what `inspect_trace` validates.

use std::sync::Arc;

use obs::event::parse_line;
use obs::trace::{self, TraceWriter};
use obs::{Event, Value};
use rac::runner::{MeasureJob, Runner};
use rac::{Experiment, RacAgent, RacSettings, SystemContext};
use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::{Param, ServerConfig, SystemSpec};

fn spec() -> SystemSpec {
    SystemSpec::default().with_clients(600).with_seed(1234)
}

fn settings() -> RacSettings {
    RacSettings {
        online_levels: 3,
        sla_ms: 1_000.0,
        seed: 99,
        ..RacSettings::default()
    }
}

/// A traced session exercising every emitter: a short online tuning
/// run (experiment / phase / decision / reconfigure events) plus a
/// runner batch with a duplicate point (runner_batch event), executed
/// on a private runner with `threads` workers.
fn traced_session(threads: usize) -> String {
    let writer = Arc::new(TraceWriter::new());
    trace::with_writer(&writer, || {
        let exp = Experiment::new(spec())
            .with_interval(SimDuration::from_secs(120))
            .with_warmup(SimDuration::from_secs(240))
            .then(SystemContext::new(Mix::Shopping, ResourceLevel::Level1), 6);
        let mut agent = RacAgent::new(settings());
        exp.run(&mut agent);

        let runner = Runner::new(threads);
        let mut jobs: Vec<MeasureJob> = (0..4)
            .map(|i| {
                let config = ServerConfig::default()
                    .with(Param::MaxClients, 100 + 50 * i)
                    .unwrap();
                MeasureJob::new(
                    SystemSpec::default().with_clients(40).with_seed(i as u64),
                    config,
                    SimDuration::from_secs(10),
                    SimDuration::from_secs(40),
                )
            })
            .collect();
        jobs.push(jobs[1].clone());
        runner.run(&jobs);
    });
    writer.serialize()
}

#[test]
fn jsonl_round_trip_is_byte_identical() {
    let text = traced_session(2);
    assert!(!text.is_empty() && text.ends_with('\n'));
    let rebuilt: String = text
        .lines()
        .map(|line| {
            let event = parse_line(line).expect("every trace line parses");
            format!("{}\n", event.to_json())
        })
        .collect();
    assert_eq!(text, rebuilt, "parse → to_json must be lossless");
}

#[test]
fn trace_is_bit_identical_across_thread_counts() {
    let serial = traced_session(1);
    let parallel = traced_session(8);
    assert_eq!(
        serial, parallel,
        "trace JSONL diverged between 1 and 8 runner threads"
    );
}

#[test]
fn emitted_events_satisfy_the_documented_schema() {
    const KNOWN: [&str; 8] = [
        "decision",
        "experiment",
        "phase",
        "reconfigure",
        "runner_batch",
        "offline_training",
        "offline_policy",
        "scenario_event",
    ];
    let text = traced_session(2);
    let events: Vec<Event> = text
        .lines()
        .map(|line| parse_line(line).expect("parses"))
        .collect();
    let mut decisions = 0;
    let mut batches = 0;
    for e in &events {
        assert!(
            KNOWN.contains(&e.kind.as_str()),
            "unknown kind {:?}",
            e.kind
        );
        match e.kind.as_str() {
            "decision" => {
                decisions += 1;
                for name in [
                    "iter",
                    "rt_ms",
                    "reward",
                    "epsilon",
                    "state",
                    "action",
                    "next_state",
                    "q_delta",
                    "sweep_passes",
                    "streak",
                    "switched",
                    "switches",
                    "calibration",
                ] {
                    assert!(e.get(name).is_some(), "decision missing '{name}'");
                }
                assert!(e.get("action").and_then(Value::as_str).is_some());
                assert!(e.get("reward").and_then(Value::as_f64).is_some());
            }
            "runner_batch" => {
                batches += 1;
                let jobs = e.get("jobs").and_then(Value::as_u64).unwrap();
                let distinct = e.get("distinct").and_then(Value::as_u64).unwrap();
                assert!(distinct <= jobs, "distinct {distinct} > jobs {jobs}");
                assert_eq!(jobs, 5, "batch carries its own job count");
                assert_eq!(distinct, 4, "duplicate point collapses within the batch");
            }
            _ => {}
        }
    }
    assert_eq!(decisions, 6, "one decision event per tuning iteration");
    assert_eq!(batches, 1);
}

#[test]
fn events_are_ordered_by_sim_time_then_sequence() {
    let text = traced_session(2);
    let keys: Vec<(u64, u64, u64)> = text
        .lines()
        .map(|line| {
            let e = parse_line(line).expect("parses");
            (e.run, e.t_us, e.seq)
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "serialized trace must be in sort-key order");
}

#[test]
fn unscoped_emission_is_a_no_op() {
    // Outside a `with_writer` scope nothing is recorded and the
    // event-constructing closure is never run.
    assert!(!trace::scoped());
    trace::emit(|| unreachable!("closure must not run without a scope"));
}
