//! Determinism regression suite.
//!
//! The parallel runner's headline guarantee — parallel ≡ serial, bit
//! for bit, at any thread count — rests on `measure_config` being a
//! pure function of `(spec, config, warmup, measure)`. These tests pin
//! both layers: the purity of a single measurement, and the runner's
//! order/identity contract across thread counts and the cache.

use rac::runner::{MeasureJob, Runner};
use rac::{train_initial_policy, ConfigLattice, OfflineSettings, SimMeasurer, SlaReward};
use simkernel::SimDuration;
use websim::{measure_config, Param, PerfSample, ServerConfig, SystemSpec};

fn spec(seed: u64) -> SystemSpec {
    SystemSpec::default().with_clients(40).with_seed(seed)
}

const WARMUP: SimDuration = SimDuration::from_secs(10);
const MEASURE: SimDuration = SimDuration::from_secs(40);

/// A mixed batch: several seeds, several configurations, one duplicate.
fn batch() -> Vec<MeasureJob> {
    let mut jobs: Vec<MeasureJob> = (0..6)
        .map(|i| {
            let config = ServerConfig::default()
                .with(Param::MaxClients, 100 + 50 * (i as u32 % 4))
                .unwrap();
            MeasureJob::new(spec(i), config, WARMUP, MEASURE)
        })
        .collect();
    jobs.push(jobs[2].clone()); // duplicate point, exercises in-batch memoization
    jobs
}

#[test]
fn same_seed_measure_config_is_bit_for_bit_repeatable() {
    let s = spec(7);
    let a = measure_config(&s, ServerConfig::default(), WARMUP, MEASURE);
    let b = measure_config(&s, ServerConfig::default(), WARMUP, MEASURE);
    // PartialEq on PerfSample is f64 equality — bit-for-bit, not tolerance.
    assert_eq!(a, b);
    assert!(a.is_measurable());
}

#[test]
fn different_seeds_actually_differ() {
    // Guards against the trivial way the repeatability test could pass:
    // a simulator that ignores its seed entirely.
    let a = measure_config(&spec(1), ServerConfig::default(), WARMUP, MEASURE);
    let b = measure_config(&spec(2), ServerConfig::default(), WARMUP, MEASURE);
    assert_ne!(a, b);
}

#[test]
fn runner_output_is_identical_across_thread_counts_and_matches_serial() {
    let jobs = batch();
    let serial: Vec<PerfSample> = jobs
        .iter()
        .map(|j| measure_config(&j.spec, j.config, j.warmup, j.measure))
        .collect();
    for threads in [1, 2, 8] {
        let runner = Runner::new(threads);
        let parallel = runner.run(&jobs);
        assert_eq!(
            parallel, serial,
            "runner output diverged from serial at {threads} threads"
        );
        // And a second run over a warm cache returns the same bits.
        assert_eq!(
            runner.run(&jobs),
            serial,
            "warm-cache rerun diverged at {threads} threads"
        );
    }
}

#[test]
fn env_configured_runner_matches_serial() {
    // Whatever RAC_THREADS the harness (e.g. the CI matrix) sets, the
    // env-configured runner must reproduce the serial path exactly.
    let jobs = batch();
    let serial: Vec<PerfSample> = jobs
        .iter()
        .map(|j| measure_config(&j.spec, j.config, j.warmup, j.measure))
        .collect();
    let runner = Runner::from_env();
    assert_eq!(
        runner.run(&jobs),
        serial,
        "RAC_THREADS={} diverged",
        runner.threads()
    );
}

#[test]
fn cache_hits_equal_fresh_simulation() {
    let runner = Runner::new(4);
    let jobs = batch();
    let first = runner.run(&jobs);
    let warm = runner.run(&jobs);
    assert_eq!(first, warm);
    runner.clear_cache();
    let cold = runner.run(&jobs);
    assert_eq!(first, cold);
}

#[test]
fn cache_key_separates_every_input_dimension() {
    let runner = Runner::new(2);
    let base = MeasureJob::new(spec(3), ServerConfig::default(), WARMUP, MEASURE);
    let variants = vec![
        MeasureJob {
            spec: spec(4),
            ..base.clone()
        },
        MeasureJob {
            config: ServerConfig::default()
                .with(Param::MaxClients, 555)
                .unwrap(),
            ..base.clone()
        },
        MeasureJob {
            warmup: SimDuration::from_secs(11),
            ..base.clone()
        },
        MeasureJob {
            measure: SimDuration::from_secs(41),
            ..base.clone()
        },
    ];
    let mut all = vec![base];
    all.extend(variants);
    runner.run(&all);
    assert_eq!(
        runner.cache_stats().entries,
        all.len(),
        "distinct (spec, config, warmup, measure) points must not collide in the cache"
    );
}

#[test]
fn policy_initialization_is_deterministic_through_the_runner() {
    // The full Algorithm-2 pipeline, sampled through SimMeasurer on
    // private runners with different thread counts, must produce
    // PartialEq-identical policies (Q-table, predictions, fit).
    static RUNNER_1: std::sync::OnceLock<Runner> = std::sync::OnceLock::new();
    static RUNNER_8: std::sync::OnceLock<Runner> = std::sync::OnceLock::new();
    let r1 = RUNNER_1.get_or_init(|| Runner::new(1));
    let r8 = RUNNER_8.get_or_init(|| Runner::new(8));

    let lattice = ConfigLattice::new(3);
    let reward = SlaReward::new(1_000.0);
    let settings = OfflineSettings {
        group_levels: 2,
        ..OfflineSettings::default()
    };
    let train = |runner: &'static Runner| {
        let measurer = SimMeasurer::on_runner(runner, spec(5), WARMUP, MEASURE);
        train_initial_policy(&lattice, reward, settings, measurer).unwrap()
    };
    assert_eq!(train(r1), train(r8));
}

#[test]
fn spec_fingerprint_tracks_every_field_that_matters() {
    let base = spec(1);
    assert_eq!(base.fingerprint(), spec(1).fingerprint());
    let variants = [
        base.clone().with_seed(2),
        base.clone().with_clients(41),
        base.clone().with_mix(tpcw::Mix::Ordering),
        base.clone().with_level(vmstack::ResourceLevel::Level3),
    ];
    for v in &variants {
        assert_ne!(base.fingerprint(), v.fingerprint(), "collision: {v:?}");
    }
}
