//! Cross-crate invariant tests: the pieces agree with each other at the
//! seams (lattice ↔ simulator, MDP ↔ RL, properties under random use).

use proptest::prelude::*;
use rac::{Action, ConfigLattice, ConfigMdp, SlaReward};
use rl::{Environment, QTable};
use simkernel::{Pcg64, SimDuration};
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::{Param, ServerConfig, SystemSpec, ThreeTierSystem};

/// Every lattice state is a configuration the simulator accepts at
/// runtime without panicking and keeps serving under.
#[test]
fn every_lattice_state_is_runnable() {
    let lattice = ConfigLattice::new(3);
    let mut sys = ThreeTierSystem::new(SystemSpec::default().with_clients(40).with_seed(5));
    // Exercise a deterministic sample of states, including the corners.
    let probe: Vec<usize> = (0..lattice.num_states())
        .step_by(lattice.num_states() / 40)
        .collect();
    for state in probe {
        let cfg = lattice.config_at(state);
        sys.set_config(cfg);
        let s = sys.run_interval(SimDuration::from_secs(20));
        assert!(s.refused < 10_000, "mass refusals at state {state}: {s}");
    }
}

/// The MDP transition table agrees with the lattice and action
/// semantics for every action from random states.
#[test]
fn mdp_transitions_agree_with_lattice() {
    let lattice = ConfigLattice::new(4);
    let mdp = ConfigMdp::new(&lattice, SlaReward::new(1_000.0));
    let mut rng = Pcg64::seed_from_u64(77);
    for _ in 0..200 {
        let s = rng.below(lattice.num_states() as u64) as usize;
        let mut coords = lattice.space().decode(s);
        let a = rng.below(Action::COUNT as u64) as usize;
        Action::from_index(a).apply(&mut coords, lattice.levels());
        assert_eq!(mdp.transition(s, a), lattice.space().encode(&coords));
    }
}

/// Actions always yield configurations that differ in at most one
/// parameter and by exactly one lattice step.
#[test]
fn actions_change_at_most_one_parameter() {
    let lattice = ConfigLattice::new(4);
    let mdp = ConfigMdp::new(&lattice, SlaReward::new(1_000.0));
    let mut rng = Pcg64::seed_from_u64(78);
    for _ in 0..200 {
        let s = rng.below(lattice.num_states() as u64) as usize;
        let a = rng.below(Action::COUNT as u64) as usize;
        let s2 = mdp.transition(s, a);
        let before = lattice.config_at(s);
        let after = lattice.config_at(s2);
        let changed: Vec<Param> = Param::ALL
            .into_iter()
            .filter(|&p| before.get(p) != after.get(p))
            .collect();
        assert!(changed.len() <= 1, "action {a} changed {changed:?}");
    }
}

/// The simulator honours every traffic mix / level combination of
/// Table 2 without stalling.
#[test]
fn all_table2_combinations_serve_requests() {
    for context in rac::paper_contexts() {
        let spec = SystemSpec::default()
            .with_clients(60)
            .with_mix(context.mix)
            .with_level(context.level)
            .with_seed(6);
        let mut sys = ThreeTierSystem::new(spec);
        let s = sys.run_interval(SimDuration::from_secs(90));
        assert!(s.is_measurable(), "{context}: no completions");
        assert!(s.throughput_rps > 1.0, "{context}: throughput {s}");
    }
}

/// Reconfiguring mid-flight never loses the system: it keeps completing
/// requests across an aggressive random reconfiguration schedule.
#[test]
fn random_reconfiguration_storm_is_safe() {
    let lattice = ConfigLattice::new(3);
    let mut rng = Pcg64::seed_from_u64(9);
    let mut sys = ThreeTierSystem::new(SystemSpec::default().with_clients(80).with_seed(9));
    let mut total = 0u64;
    for i in 0..30 {
        let state = rng.below(lattice.num_states() as u64) as usize;
        sys.set_config(lattice.config_at(state));
        if i % 7 == 3 {
            let level = ResourceLevel::ALL[rng.below(3) as usize];
            sys.set_resource_level(level);
        }
        if i % 11 == 5 {
            let mix = Mix::ALL[rng.below(3) as usize];
            sys.set_workload(40 + (rng.below(80) as usize), mix);
        }
        let s = sys.run_interval(SimDuration::from_secs(30));
        total += s.completed;
    }
    assert!(
        total > 500,
        "storm starved the system: only {total} completions"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random greedy walks through any Q-table stay inside the state
    /// space and produce valid configurations.
    #[test]
    fn prop_greedy_walks_stay_valid(seed: u64) {
        let lattice = ConfigLattice::new(3);
        let mdp = ConfigMdp::new(&lattice, SlaReward::new(1_000.0));
        let mut q = QTable::new(lattice.num_states(), Action::COUNT);
        let mut rng = Pcg64::seed_from_u64(seed);
        // Random Q-values → arbitrary greedy policy.
        for _ in 0..5_000 {
            let s = rng.below(lattice.num_states() as u64) as usize;
            let a = rng.below(Action::COUNT as u64) as usize;
            q.set(s, a, rng.f64() * 10.0 - 5.0);
        }
        let mut s = rng.below(lattice.num_states() as u64) as usize;
        for _ in 0..64 {
            s = mdp.transition(s, q.best_action(s));
            prop_assert!(s < lattice.num_states());
            let cfg = lattice.config_at(s);
            prop_assert_eq!(lattice.state_of(&cfg), s);
        }
    }

    /// Rewards seen by the MDP are always within the SLA reward bounds.
    #[test]
    fn prop_rewards_bounded(seed: u64) {
        let lattice = ConfigLattice::new(3);
        let mut mdp = ConfigMdp::new(&lattice, SlaReward::new(500.0));
        let mut rng = Pcg64::seed_from_u64(seed);
        for _ in 0..100 {
            let s = rng.below(lattice.num_states() as u64) as usize;
            mdp.set_perf(s, rng.f64() * 10_000.0);
        }
        for _ in 0..100 {
            let s = rng.below(lattice.num_states() as u64) as usize;
            let a = rng.below(Action::COUNT as u64) as usize;
            let s2 = mdp.transition(s, a);
            let r = mdp.reward(s, a, s2);
            prop_assert!((-SlaReward::PENALTY_CAP..=1.0).contains(&r));
        }
    }
}

/// Clone-independence: a cloned system evolves identically to its
/// original (no hidden shared state).
#[test]
fn cloned_system_is_independent_but_identical() {
    let mut a = ThreeTierSystem::new(SystemSpec::default().with_clients(50).with_seed(3));
    let _ = a.run_interval(SimDuration::from_secs(60));
    let mut b = a.clone();
    let sa = a.run_interval(SimDuration::from_secs(60));
    let sb = b.run_interval(SimDuration::from_secs(60));
    assert_eq!(sa, sb);
    // Diverge one copy: the other is unaffected.
    b.set_config(
        ServerConfig::default()
            .with(Param::MaxClients, 5)
            .expect("in range"),
    );
    let sa2 = a.run_interval(SimDuration::from_secs(60));
    let sb2 = b.run_interval(SimDuration::from_secs(60));
    assert_ne!(sa2, sb2);
}
