//! Tests pinning the qualitative claims of the paper that the
//! simulated substrate must reproduce (Section 2 motivation and the
//! Section 5 evaluation shapes).

use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::{measure_config, Param, ServerConfig, SystemSpec};

fn spec(mix: Mix, level: ResourceLevel) -> SystemSpec {
    SystemSpec::default()
        .with_clients(600)
        .with_mix(mix)
        .with_level(level)
        .with_seed(7)
}

fn rt(spec: &SystemSpec, cfg: ServerConfig) -> f64 {
    measure_config(
        spec,
        cfg,
        SimDuration::from_secs(600),
        SimDuration::from_secs(240),
    )
    .mean_response_ms
}

fn with_mc(mc: u32) -> ServerConfig {
    ServerConfig::default()
        .with(Param::MaxClients, mc)
        .expect("in range")
}

/// Section 2.2 / Figure 2: each platform has its own preferred
/// MaxClients; a stronger VM does not need more workers.
#[test]
fn preferred_max_clients_does_not_grow_with_capacity() {
    let sweep = [100u32, 200, 300, 400, 500, 600];
    let best = |level: ResourceLevel| -> u32 {
        let s = spec(Mix::Shopping, level);
        sweep
            .iter()
            .copied()
            .min_by(|&a, &b| rt(&s, with_mc(a)).total_cmp(&rt(&s, with_mc(b))))
            .expect("non-empty")
    };
    let l1 = best(ResourceLevel::Level1);
    let l3 = best(ResourceLevel::Level3);
    assert!(
        l1 <= l3,
        "optimal MaxClients should not grow with capacity: Level-1 {l1} vs Level-3 {l3}"
    );
}

/// Section 2.2 / Figure 2: the MaxClients curve is concave upward —
/// both extremes lose to the middle.
#[test]
fn max_clients_curve_is_concave() {
    let s = spec(Mix::Shopping, ResourceLevel::Level1);
    let low = rt(&s, with_mc(5));
    let mid = rt(&s, with_mc(300));
    let high = rt(&s, with_mc(600));
    assert!(mid < low, "middle ({mid:.0}) must beat choked ({low:.0})");
    // The high end may be flat rather than rising in a closed-loop
    // system; it must never beat the knee by much.
    assert!(high < low, "high end should at least beat the choked end");
}

/// Figure 3: the weaker platform is slower under the same load and the
/// same configuration.
#[test]
fn levels_order_response_times() {
    let cfg = with_mc(400);
    let l1 = rt(&spec(Mix::Shopping, ResourceLevel::Level1), cfg);
    let l2 = rt(&spec(Mix::Shopping, ResourceLevel::Level2), cfg);
    let l3 = rt(&spec(Mix::Shopping, ResourceLevel::Level3), cfg);
    assert!(l1 < l3, "Level-1 ({l1:.0}) must beat Level-3 ({l3:.0})");
    assert!(
        l2 <= l3 * 1.05,
        "Level-2 ({l2:.0}) must not lose to Level-3 ({l3:.0})"
    );
}

/// Figure 1: traffic mixes stress the system differently — response
/// times under the default configuration differ noticeably across
/// mixes.
#[test]
fn mixes_have_different_performance_profiles() {
    let cfg = ServerConfig::default();
    let rts: Vec<f64> = Mix::ALL
        .iter()
        .map(|&m| rt(&spec(m, ResourceLevel::Level1), cfg))
        .collect();
    let min = rts.iter().copied().fold(f64::INFINITY, f64::min);
    let max = rts.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max > min * 1.15,
        "mixes should differ by more than 15%: {rts:?}"
    );
}

/// Section 4.2 / the "KeepAlive > 20 is a bad decision" observation:
/// with TPC-W think times, very long keep-alive holds cannot beat a
/// moderate setting.
#[test]
fn very_long_keepalive_is_not_optimal() {
    let s = spec(Mix::Shopping, ResourceLevel::Level1);
    let base = ServerConfig::default()
        .with(Param::MaxClients, 300)
        .expect("in range");
    let moderate = rt(&s, base.with(Param::KeepaliveTimeout, 5).expect("in range"));
    let very_long = rt(
        &s,
        base.with(Param::KeepaliveTimeout, 21).expect("in range"),
    );
    assert!(
        moderate <= very_long * 1.10,
        "keep-alive 5s ({moderate:.0}) should be competitive with 21s ({very_long:.0})"
    );
}

/// Session timeout matters most when memory is scarce (Level-3), where
/// long timeouts bloat the session store and evict the database cache.
#[test]
fn long_session_timeout_hurts_on_small_vm() {
    let s = spec(Mix::Ordering, ResourceLevel::Level3);
    let base = ServerConfig::default()
        .with(Param::MaxClients, 400)
        .expect("in range");
    let short = rt(&s, base.with(Param::SessionTimeout, 1).expect("in range"));
    let long = rt(&s, base.with(Param::SessionTimeout, 35).expect("in range"));
    assert!(
        long > short,
        "35-minute sessions ({long:.0}) should be worse than 1-minute ({short:.0}) on Level-3"
    );
}

/// A tiny MaxThreads chokes the application tier where service times
/// are long (the memory-starved Level-3 platform); on Level-1 five fast
/// threads can still keep up.
#[test]
fn tiny_max_threads_chokes_app_tier() {
    let s = spec(Mix::Shopping, ResourceLevel::Level3);
    let base = ServerConfig::default()
        .with(Param::MaxClients, 300)
        .expect("in range");
    let choked = rt(&s, base.with(Param::MaxThreads, 5).expect("in range"));
    let sane = rt(&s, base.with(Param::MaxThreads, 200).expect("in range"));
    assert!(
        choked > 1.5 * sane,
        "maxThreads=5 ({choked:.0}) should be much worse than 200 ({sane:.0})"
    );
}

/// The default configuration is mediocre under heavy load — the premise
/// of the whole paper (Figure 5's static-default curve).
#[test]
fn default_configuration_leaves_performance_on_the_table() {
    let s = spec(Mix::Shopping, ResourceLevel::Level1);
    let dflt = rt(&s, ServerConfig::default());
    let tuned = rt(
        &s,
        ServerConfig::default()
            .with(Param::MaxClients, 450)
            .expect("in range")
            .with(Param::KeepaliveTimeout, 5)
            .expect("in range"),
    );
    assert!(
        tuned < dflt * 0.7,
        "a tuned config ({tuned:.0}) should beat the default ({dflt:.0}) by >30%"
    );
}
