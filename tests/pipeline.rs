//! End-to-end pipeline tests: offline training → online tuning against
//! the live simulator, spanning every crate in the workspace.

use rac::{
    build_policy_library, ConfigLattice, Experiment, RacAgent, RacSettings, SlaReward,
    StaticDefault, SystemContext, TrainingOptions, TrialAndError,
};
use simkernel::SimDuration;
use tpcw::Mix;
use vmstack::ResourceLevel;
use websim::SystemSpec;

fn test_spec() -> SystemSpec {
    // Heavy enough that configuration genuinely matters (an underloaded
    // system is already fine at the defaults and there is nothing to
    // tune).
    SystemSpec::default().with_clients(600).with_seed(1234)
}

fn fast_settings() -> RacSettings {
    RacSettings {
        online_levels: 3,
        sla_ms: 1_000.0,
        seed: 99,
        ..RacSettings::default()
    }
}

fn fast_training() -> TrainingOptions {
    TrainingOptions {
        warmup: SimDuration::from_secs(300),
        measure: SimDuration::from_secs(180),
        ..TrainingOptions::default()
    }
}

fn quick_experiment(context: SystemContext, iters: usize) -> Experiment {
    Experiment::new(test_spec())
        .with_interval(SimDuration::from_secs(120))
        .with_warmup(SimDuration::from_secs(240))
        .then(context, iters)
}

#[test]
fn offline_training_then_online_tuning_beats_default() {
    let context = SystemContext::new(Mix::Shopping, ResourceLevel::Level1);
    let settings = fast_settings();
    let lattice = ConfigLattice::new(settings.online_levels);
    let library = build_policy_library(
        &test_spec(),
        &[context],
        &lattice,
        SlaReward::new(settings.sla_ms),
        fast_training(),
    );
    let policy = library.for_context(context).expect("trained").clone();
    assert!(
        policy.fit.r_squared > 0.3,
        "regression badly underfit: {:?}",
        policy.fit
    );

    let exp = quick_experiment(context, 15);
    let mut agent = RacAgent::with_initial_policy(settings, &policy);
    let agent_series = exp.run(&mut agent);
    let mut baseline = StaticDefault::new();
    let baseline_series = exp.run(&mut baseline);

    // Compare the settled halves.
    let agent_late = rac::series_mean(&agent_series[7..]);
    let baseline_late = rac::series_mean(&baseline_series[7..]);
    assert!(
        agent_late < baseline_late,
        "initialized RAC ({agent_late:.0} ms) should beat the default ({baseline_late:.0} ms)"
    );
}

#[test]
fn adaptive_agent_switches_policies_on_context_change() {
    let contexts = [
        SystemContext::new(Mix::Shopping, ResourceLevel::Level1),
        SystemContext::new(Mix::Ordering, ResourceLevel::Level3),
    ];
    let settings = fast_settings();
    let lattice = ConfigLattice::new(settings.online_levels);
    let library = build_policy_library(
        &test_spec(),
        &contexts,
        &lattice,
        SlaReward::new(settings.sla_ms),
        fast_training(),
    );

    let exp = Experiment::new(test_spec())
        .with_interval(SimDuration::from_secs(120))
        .with_warmup(SimDuration::from_secs(240))
        .then(contexts[0], 14)
        .then(contexts[1], 14);
    let mut agent = RacAgent::with_policy_library(settings, library);
    let series = exp.run(&mut agent);
    assert_eq!(series.len(), 28);
    // The Level-1 → Level-3 downgrade with an ordering mix is a drastic
    // shift; the detector must notice it at least once.
    assert!(
        agent.policy_switches() >= 1,
        "no policy switch across a drastic context change"
    );
}

#[test]
fn trial_and_error_improves_over_time() {
    let context = SystemContext::new(Mix::Shopping, ResourceLevel::Level1);
    let exp = quick_experiment(context, 30);
    let mut tae = TrialAndError::new(3);
    let series = exp.run(&mut tae);
    // After probing 8 parameters × 3 levels it must settle…
    assert!(tae.is_done(), "sweep unfinished after 30 iterations");
    // …and the settled configuration must beat the starting default.
    let start = series[0].response_ms;
    let settled = rac::series_mean(&series[25..]);
    assert!(
        settled < start * 1.05,
        "trial-and-error ended worse than it started: {start:.0} -> {settled:.0}"
    );
}

#[test]
fn cold_agent_explores_without_crashing_and_reports_experience() {
    let context = SystemContext::new(Mix::Browsing, ResourceLevel::Level2);
    let exp = quick_experiment(context, 10);
    let mut agent = RacAgent::new(fast_settings());
    let series = exp.run(&mut agent);
    assert_eq!(series.len(), 10);
    assert_eq!(agent.iterations(), 10);
    assert_eq!(agent.experience().len(), 10);
    // All applied configurations must be valid Table-1 settings.
    for r in &series {
        for p in websim::Param::ALL {
            let (lo, hi) = p.range();
            let v = r.config.get(p);
            assert!(
                v >= lo && v <= hi,
                "{p} = {v} out of range at iter {}",
                r.iteration
            );
        }
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let context = SystemContext::new(Mix::Shopping, ResourceLevel::Level1);
    let run = || {
        let exp = quick_experiment(context, 6);
        let mut agent = RacAgent::new(fast_settings());
        exp.run(&mut agent)
            .iter()
            .map(|r| (r.response_ms, r.config))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "identical seeds must reproduce bit-for-bit");
}
