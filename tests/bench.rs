//! Differential golden suite for the PR-6 hot-path rewrites.
//!
//! The bench campaign (calendar-queue future-event list, precomputed
//! Q-sweep tables, batched interval statistics) is only admissible if it
//! is *invisible* to every simulation output. This suite pins the
//! `figures scenario` CSV **and** decision-trace bytes for all three
//! bundled scenarios, at both ends of the `RAC_THREADS` matrix that CI
//! exercises (1 and 8 worker threads): the goldens were captured from
//! the pre-optimization tree, so any behavioral drift introduced by a
//! rewrite — a reordered tie, a float rounded differently, an event
//! popped in another order — fails byte comparison here.
//!
//! Regenerate (only after an *intentional* output change) with:
//!
//! ```text
//! RAC_UPDATE_GOLDEN=1 cargo test -p rac-integration --test bench
//! ```

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use obs::trace::{self, TraceWriter};
use rac::runner::Runner;
use rac::{
    paper_contexts, train_initial_policy, ConfigLattice, OfflineSettings, PolicyLibrary,
    SimMeasurer, SlaReward,
};
use rac_bench::scenario::{resolve, run_tuners, scenario_table};
use rac_bench::{paper_system_spec, ONLINE_LEVELS, SLA_MS};
use simkernel::SimDuration;

/// Same deterministic single-context library the scenario suite trains:
/// shopping @ Level-1, where every bundled scenario starts.
fn library_on(runner: &'static Runner) -> PolicyLibrary {
    let ctx = paper_contexts()[0];
    let lattice = ConfigLattice::new(ONLINE_LEVELS);
    let spec = paper_system_spec().with_mix(ctx.mix).with_level(ctx.level);
    let measurer = SimMeasurer::on_runner(
        runner,
        spec,
        SimDuration::from_secs(60),
        SimDuration::from_secs(60),
    );
    let settings = OfflineSettings {
        group_levels: 2,
        ..OfflineSettings::default()
    };
    let policy = train_initial_policy(&lattice, SlaReward::new(SLA_MS), settings, measurer)
        .expect("offline landscape fits");
    let mut lib = PolicyLibrary::new();
    lib.insert(ctx, policy);
    lib
}

fn runner_1() -> &'static Runner {
    static RUNNER: OnceLock<Runner> = OnceLock::new();
    RUNNER.get_or_init(|| Runner::new(1))
}

fn runner_8() -> &'static Runner {
    static RUNNER: OnceLock<Runner> = OnceLock::new();
    RUNNER.get_or_init(|| Runner::new(8))
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden")).join(name)
}

/// Exact-bytes comparison; with `RAC_UPDATE_GOLDEN` set, rewrites the
/// golden instead (capturing the current tree as the new reference).
fn check_golden_exact(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("RAC_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        std::fs::write(&path, actual).expect("write golden");
        eprintln!("updated golden {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with RAC_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name}: output drifted from the pre-optimization golden \
         (the hot-path rewrites must be byte-invisible)"
    );
}

/// Runs one bundled scenario at quick scale (the same 1/3 reduction
/// `figures scenario <name> --quick` applies) through the standard
/// three-tuner line-up on an explicit runner, returning the series CSV
/// and the serialized decision trace.
fn run_quick(name: &str, runner: &'static Runner) -> (String, String) {
    let library = library_on(runner);
    let scn = resolve(name).expect("bundled").scaled(1, 3);
    let writer = Arc::new(TraceWriter::new());
    let mut csv = String::new();
    trace::with_writer(&writer, || {
        let series = run_tuners(&scn, &library);
        csv = scenario_table(&scn, &series).render_csv();
    });
    (csv, writer.serialize())
}

/// One golden per scenario: the 1-thread run must match the pinned
/// bytes, and the 8-thread run must match the *same* bytes, so a single
/// test proves both "rewrites changed nothing" and "output independent
/// of RAC_THREADS".
fn check_scenario(name: &str) {
    let (csv_1, trace_1) = run_quick(name, runner_1());
    check_golden_exact(&format!("bench-{name}.csv"), &csv_1);
    check_golden_exact(&format!("bench-{name}.trace.jsonl"), &trace_1);
    let (csv_8, trace_8) = run_quick(name, runner_8());
    assert_eq!(
        csv_1, csv_8,
        "{name}: series CSV diverged between RAC_THREADS=1 and 8"
    );
    assert_eq!(
        trace_1, trace_8,
        "{name}: decision trace diverged between RAC_THREADS=1 and 8"
    );
}

#[test]
fn diurnal_output_pinned_across_rewrites_and_thread_counts() {
    check_scenario("diurnal");
}

#[test]
fn flash_crowd_output_pinned_across_rewrites_and_thread_counts() {
    check_scenario("flash-crowd");
}

#[test]
fn degrade_output_pinned_across_rewrites_and_thread_counts() {
    check_scenario("degrade");
}
