//! Property tests for the load-bearing kernels, cross-crate.
//!
//! These pin the numerical/combinatorial foundations the measurement
//! engine and the RL pipeline stand on: mixed-radix state indexing,
//! streaming statistics, the calibrated samplers, and configuration
//! range validation. Each property is checked against a naive reference
//! implementation on randomized inputs.

use proptest::prelude::*;
use rl::IndexSpace;
use simkernel::rng::{Exponential, Zipf};
use simkernel::stats::{DurationHistogram, Welford};
use simkernel::{Pcg64, SimDuration};
use websim::{Param, ServerConfig};

proptest! {
    // ----------------------------------------------------------------
    // rl::space — mixed-radix index <-> coordinates
    // ----------------------------------------------------------------

    #[test]
    fn space_round_trips_over_arbitrary_shapes(
        dims in proptest::collection::vec(1usize..6, 1..6),
        seed: u64,
    ) {
        let space = IndexSpace::new(dims.clone());
        let index = (seed as usize) % space.len();
        let coords = space.decode(index);
        prop_assert_eq!(coords.len(), dims.len());
        for (c, d) in coords.iter().zip(&dims) {
            prop_assert!(c < d, "coordinate {c} out of bound {d}");
        }
        prop_assert_eq!(space.encode(&coords), index);
    }

    #[test]
    fn space_encode_is_row_major_and_dense(
        dims in proptest::collection::vec(1usize..5, 1..5),
    ) {
        // Iterating all coordinates in odometer order must enumerate
        // 0..len exactly — the Q-table relies on dense row-major states.
        let space = IndexSpace::new(dims);
        let indices: Vec<usize> = space.iter().map(|c| space.encode(&c)).collect();
        prop_assert_eq!(indices, (0..space.len()).collect::<Vec<_>>());
    }

    // ----------------------------------------------------------------
    // simkernel::stats — Welford vs naive reference
    // ----------------------------------------------------------------

    #[test]
    fn welford_matches_naive_mean_and_variance(
        xs in proptest::collection::vec(-1e6f64..1e6, 2..60),
    ) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        // Two-pass sample variance (n-1 denominator) as the reference.
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let scale = var.abs().max(1.0);
        prop_assert!((w.mean() - mean).abs() <= 1e-9 * mean.abs().max(1.0));
        prop_assert!((w.variance() - var).abs() <= 1e-6 * scale,
            "welford {} vs naive {}", w.variance(), var);
    }

    #[test]
    fn welford_merge_equals_single_stream(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..40),
        ys in proptest::collection::vec(-1e3f64..1e3, 1..40),
    ) {
        let mut merged = Welford::new();
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs {
            merged.push(x);
            left.push(x);
        }
        for &y in &ys {
            merged.push(y);
            right.push(y);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), merged.count());
        prop_assert!((left.mean() - merged.mean()).abs() <= 1e-9 * merged.mean().abs().max(1.0));
        prop_assert!(
            (left.variance() - merged.variance()).abs() <= 1e-6 * merged.variance().abs().max(1.0)
        );
    }

    // ----------------------------------------------------------------
    // simkernel::stats — histogram percentile vs naive sorted reference
    // ----------------------------------------------------------------

    #[test]
    fn percentile_tracks_naive_reference_within_bucket_error(
        micros in proptest::collection::vec(1u64..10_000_000, 5..80),
        p in 1.0f64..100.0,
    ) {
        let mut hist = DurationHistogram::new();
        for &us in &micros {
            hist.record(SimDuration::from_micros(us));
        }
        let got = hist.percentile(p).expect("non-empty").as_micros();

        // Naive reference: smallest value covering >= p% of samples.
        let mut sorted = micros.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let want = sorted[rank - 1];

        // The histogram guarantees <= 4% relative error per bucket; the
        // discrete rank convention can differ by one sample, so accept
        // either neighbouring order statistic within the error band.
        let lo = sorted[rank.saturating_sub(2)] as f64 * 0.95;
        let hi = sorted[(rank).min(sorted.len() - 1)] as f64 * 1.05 + 1.0;
        prop_assert!(
            (got as f64) >= lo && (got as f64) <= hi,
            "p{p:.1}: histogram {got} outside [{lo:.0}, {hi:.0}] (naive {want})"
        );
    }

    // ----------------------------------------------------------------
    // simkernel::rng — sampler moment sanity
    // ----------------------------------------------------------------

    #[test]
    fn exponential_sample_mean_approaches_parameter(
        mean in 0.5f64..2_000.0,
        seed: u64,
    ) {
        let exp = Exponential::with_mean(mean);
        let mut rng = Pcg64::seed_from_u64(seed);
        let n = 4_000;
        let sum: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum();
        let got = sum / n as f64;
        // Std-error of the mean is mean/sqrt(n) ≈ 1.6%; allow 5 sigma.
        prop_assert!(
            (got - mean).abs() <= mean * 0.08,
            "exponential mean {got:.3} vs parameter {mean:.3}"
        );
    }

    #[test]
    fn zipf_samples_stay_in_range_and_skew_low(
        n in 2usize..200,
        s in 0.5f64..2.0,
        seed: u64,
    ) {
        let zipf = Zipf::new(n, s);
        let mut rng = Pcg64::seed_from_u64(seed);
        let draws = 2_000;
        let mut below_mid = 0usize;
        for _ in 0..draws {
            let k = zipf.sample(&mut rng);
            prop_assert!((1..=n).contains(&k), "rank {k} outside 1..={n}");
            if k <= n.div_ceil(2) {
                below_mid += 1;
            }
        }
        // Zipf mass concentrates on low ranks: at least half the draws
        // must land in the lower half (uniform would put ~50% there,
        // any s > 0 strictly more).
        prop_assert!(
            below_mid * 2 >= draws,
            "only {below_mid}/{draws} draws in the low-rank half (n={n}, s={s:.2})"
        );
    }

    // ----------------------------------------------------------------
    // websim::config — range validation
    // ----------------------------------------------------------------

    #[test]
    fn server_config_with_accepts_exactly_the_declared_range(
        param_idx in 0usize..8,
        value in 0u32..100_000,
    ) {
        let param = Param::ALL[param_idx];
        let (lo, hi) = param.range();
        let result = ServerConfig::default().with(param, value);
        if (lo..=hi).contains(&value) {
            let cfg = result.expect("in-range value accepted");
            prop_assert_eq!(cfg.get(param), value);
            // Other parameters are untouched.
            for &other in Param::ALL.iter().filter(|&&p| p != param) {
                prop_assert_eq!(cfg.get(other), ServerConfig::default().get(other));
            }
        } else {
            prop_assert!(result.is_err(), "{param:?}={value} outside [{lo},{hi}] accepted");
        }
    }

    #[test]
    fn server_config_from_values_round_trips(
        levels in proptest::collection::vec(0.0f64..1.0, 8),
    ) {
        // Interpolate each parameter inside its range, build, read back.
        let mut values = [0u32; 8];
        for (i, (param, t)) in Param::ALL.iter().zip(&levels).enumerate() {
            let (lo, hi) = param.range();
            values[i] = lo + ((hi - lo) as f64 * t) as u32;
        }
        let cfg = ServerConfig::from_values(values).expect("interpolated values in range");
        prop_assert_eq!(cfg.values(), values);
    }
}
