//! Crash-safe checkpoint/restore integration tests.
//!
//! The headline guarantee pinned here: a scenario line-up run killed at
//! a checkpoint boundary and resumed **in a fresh process** (modeled by
//! a fresh trace writer and freshly constructed tuners restored purely
//! from the snapshot file) produces byte-identical CSV and trace output
//! to a run that was never interrupted — at boundaries both on and off
//! the flush schedule. Alongside it: on-disk corruption of every kind
//! must surface as a typed [`ckpt::CkptError`], never a panic or a
//! silently wrong agent, and a finished run's checkpoint must be able
//! to warm-start the next run's policy library.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use ckpt::{CkptError, Snapshot, SnapshotWriter};
use obs::trace::{self, TraceWriter};
use rac::runner::Runner;
use rac::{
    paper_contexts, train_initial_policy, ConfigLattice, OfflineSettings, PolicyLibrary, RacAgent,
    SimMeasurer, SlaReward, Tuner,
};
use rac_bench::checkpoint::{run_tuners_checkpointed, CheckpointOptions, LineupOutcome};
use rac_bench::scenario::scenario_table;
use rac_bench::{paper_system_spec, standard_settings, ONLINE_LEVELS, SLA_MS};
use scenario::Scenario;
use simkernel::SimDuration;
use websim::PerfSample;

/// A small deterministic policy library at the standard lattice
/// resolution (checkpoint restore validates Q-table dimensions, so the
/// lattice must match `ONLINE_LEVELS`). Trained once per process.
fn shared_library() -> &'static PolicyLibrary {
    static LIBRARY: OnceLock<PolicyLibrary> = OnceLock::new();
    static RUNNER: OnceLock<Runner> = OnceLock::new();
    LIBRARY.get_or_init(|| {
        let ctx = paper_contexts()[0];
        let lattice = ConfigLattice::new(ONLINE_LEVELS);
        let spec = paper_system_spec()
            .with_clients(60)
            .with_mix(ctx.mix)
            .with_level(ctx.level);
        let measurer = SimMeasurer::on_runner(
            RUNNER.get_or_init(|| Runner::new(4)),
            spec,
            SimDuration::from_secs(60),
            SimDuration::from_secs(60),
        );
        let settings = OfflineSettings {
            group_levels: 2,
            ..OfflineSettings::default()
        };
        let policy = train_initial_policy(&lattice, SlaReward::new(SLA_MS), settings, measurer)
            .expect("offline landscape fits");
        let mut lib = PolicyLibrary::new();
        lib.insert(ctx, policy);
        lib
    })
}

/// A short inline scenario: 6 intervals per tuner (18 line-up
/// iterations), with a workload shift and both measurement faults.
fn tiny_scenario() -> Scenario {
    Scenario::parse(
        "name ckpt-mini\nduration 360s\ninterval 60s\nwarmup 60s\nclients 60\nseed 11\n\
         at 60s intensity 1.5\nfault at 150s outlier 3\nfault at 210s drop\n",
    )
    .expect("inline scenario parses")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rac-ckpt-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An agent mid-run, with learned state worth checkpointing: a few
/// intervals of plausible (and one SLA-violating) measurements.
fn warmed_agent() -> RacAgent {
    let mut agent = RacAgent::with_policy_library(standard_settings(), shared_library().clone());
    for response in [400.0, 700.0, 1500.0, 900.0, 600.0] {
        let _ = agent.next_config(&PerfSample {
            mean_response_ms: response,
            p95_response_ms: response * 1.8,
            throughput_rps: 150.0,
            completed: 9000,
            refused: 0,
        });
    }
    agent
}

#[test]
fn written_checkpoint_reloads_byte_identically() {
    let agent = warmed_agent();
    let mut snap = SnapshotWriter::new();
    agent.save_state(&mut snap);
    let original = snap.to_bytes();

    let dir = temp_dir("roundtrip");
    let path = dir.join("agent.ckpt");
    snap.write_atomic(&path).expect("atomic write");
    let restored = RacAgent::restore(&Snapshot::load(&path).expect("load")).expect("restore");

    // The restored agent must re-encode to the exact same bytes (full
    // state equality, including NaN-holding fields that `==` can't see)
    // and keep making the exact same decisions.
    let mut again = SnapshotWriter::new();
    restored.save_state(&mut again);
    assert_eq!(
        again.to_bytes(),
        original,
        "restore → save must be a byte-level fixed point"
    );

    let mut a = warmed_agent();
    let mut b = restored;
    for response in [800.0, 1200.0, 500.0, 650.0] {
        let sample = PerfSample {
            mean_response_ms: response,
            p95_response_ms: response * 1.8,
            throughput_rps: 150.0,
            completed: 9000,
            refused: 0,
        };
        assert_eq!(
            a.next_config(&sample),
            b.next_config(&sample),
            "restored agent diverged at response {response}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_files_yield_typed_errors() {
    let mut snap = SnapshotWriter::new();
    warmed_agent().save_state(&mut snap);
    let dir = temp_dir("corrupt");
    let path = dir.join("agent.ckpt");
    snap.write_atomic(&path).expect("atomic write");
    let clean = std::fs::read(&path).expect("read back");

    // Truncation at the header, mid-section-table, and mid-payload.
    for cut in [0, 7, 15, clean.len() / 3, clean.len() - 1] {
        std::fs::write(&path, &clean[..cut]).unwrap();
        let err = Snapshot::load(&path).unwrap_err();
        assert!(
            matches!(err, CkptError::Truncated { .. }),
            "truncation to {cut} bytes gave {err:?}"
        );
    }

    // A single flipped bit deep in a payload trips that section's CRC.
    let mut flipped = clean.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(&path, &flipped).unwrap();
    let err = Snapshot::load(&path).unwrap_err();
    assert!(
        matches!(
            err,
            CkptError::CrcMismatch { .. } | CkptError::Truncated { .. } | CkptError::Corrupt { .. }
        ),
        "bit flip at byte {mid} gave {err:?}"
    );

    // A flip inside the first section's payload specifically is a CRC
    // mismatch (the section table for `rac.settings` ends well before
    // byte 64 and its payload is longer than 8 bytes).
    let mut payload_flip = clean.clone();
    let offset = 16 + 2 + "rac.settings".len() + 8 + 4;
    payload_flip[offset] ^= 0x01;
    std::fs::write(&path, &payload_flip).unwrap();
    assert!(matches!(
        Snapshot::load(&path).unwrap_err(),
        CkptError::CrcMismatch { section } if section == "rac.settings"
    ));

    // A future format version is refused up front.
    let mut stale = clean.clone();
    stale[8] = stale[8].wrapping_add(1);
    std::fs::write(&path, &stale).unwrap();
    assert!(matches!(
        Snapshot::load(&path).unwrap_err(),
        CkptError::UnsupportedVersion { .. }
    ));

    // A non-checkpoint file is not even parsed past the magic.
    let mut not_ours = clean;
    not_ours[0] = b'X';
    std::fs::write(&path, &not_ours).unwrap();
    assert!(matches!(
        Snapshot::load(&path).unwrap_err(),
        CkptError::BadMagic
    ));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Runs the checkpointed line-up inside its own trace writer (a fresh
/// "process"), returning the rendered CSV (empty if interrupted) and
/// the serialized trace.
fn traced_lineup(
    scn: &Scenario,
    options: &CheckpointOptions,
    resume: Option<&Snapshot>,
) -> (String, String) {
    let writer = Arc::new(TraceWriter::new());
    let csv = trace::with_writer(&writer, || {
        match run_tuners_checkpointed(scn, shared_library(), options, resume).expect("lineup runs")
        {
            LineupOutcome::Complete(series) => scenario_table(scn, &series).render_csv(),
            LineupOutcome::Interrupted { .. } => String::new(),
        }
    });
    (csv, writer.serialize())
}

#[test]
fn killed_and_resumed_run_is_byte_identical_to_uninterrupted() {
    let scn = tiny_scenario();
    let dir = temp_dir("resume");

    let reference = CheckpointOptions {
        path: dir.join("reference.ckpt"),
        every: 4,
        stop_after: None,
    };
    let (full_csv, full_trace) = traced_lineup(&scn, &reference, None);
    assert!(!full_csv.is_empty());
    assert!(
        full_trace.contains("\"kind\":\"checkpoint\""),
        "flush boundaries must be trace events: {full_trace}"
    );

    // Kill points: on the flush schedule (8), off it (7, pending-flush
    // write), and exactly at a tuner handover (6 = first tuner's last
    // iteration).
    for stop_after in [8usize, 7, 6] {
        let path = dir.join(format!("kill-{stop_after}.ckpt"));
        let interrupted = CheckpointOptions {
            path: path.clone(),
            every: 4,
            stop_after: Some(stop_after),
        };
        let (no_csv, _) = traced_lineup(&scn, &interrupted, None);
        assert!(no_csv.is_empty(), "stopped run must not claim completion");

        let snap = Snapshot::load(&path).expect("checkpoint file exists at the kill point");
        let resumed_opts = CheckpointOptions {
            path,
            every: 4,
            stop_after: None,
        };
        let (csv, trace_out) = traced_lineup(&scn, &resumed_opts, Some(&snap));
        assert_eq!(
            csv, full_csv,
            "CSV after kill at {stop_after} differs from the uninterrupted run"
        );
        assert_eq!(
            trace_out, full_trace,
            "trace after kill at {stop_after} differs from the uninterrupted run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn finished_run_checkpoint_warm_starts_the_library() {
    let scn = tiny_scenario();
    let dir = temp_dir("warmstart");
    let path = dir.join("done.ckpt");
    let options = CheckpointOptions {
        path: path.clone(),
        every: 5,
        stop_after: None,
    };
    let outcome =
        run_tuners_checkpointed(&scn, shared_library(), &options, None).expect("lineup runs");
    assert!(matches!(outcome, LineupOutcome::Complete(_)));

    let snap = Snapshot::load(&path).expect("final checkpoint persisted");
    let lib = rac::library_from_snapshot(&snap).expect("library section present");
    assert_eq!(
        &lib,
        shared_library(),
        "warm-started library must equal the one the run used"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_wrong_fingerprint_is_rejected() {
    let scn = tiny_scenario();
    let dir = temp_dir("fingerprint");
    let path = dir.join("run.ckpt");
    let options = CheckpointOptions {
        path: path.clone(),
        every: 2,
        stop_after: Some(2),
    };
    run_tuners_checkpointed(&scn, shared_library(), &options, None).expect("stops cleanly");
    let snap = Snapshot::load(&path).expect("load");

    // Same text except for the seed: different scenario fingerprint.
    let other = Scenario::parse(
        "name ckpt-mini\nduration 360s\ninterval 60s\nwarmup 60s\nclients 60\nseed 12\n\
         at 60s intensity 1.5\nfault at 150s outlier 3\nfault at 210s drop\n",
    )
    .unwrap();
    let err = run_tuners_checkpointed(&other, shared_library(), &options, Some(&snap)).unwrap_err();
    assert!(matches!(err, CkptError::Mismatch { .. }), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
