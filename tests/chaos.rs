//! Chaos-harness integration tests.
//!
//! Every chaos run is a pure function of its seed: the fault schedule
//! comes from a `simkernel` RNG stream and the run itself from the
//! scenario's seed, so the invariants pinned here are exact, not
//! statistical:
//!
//! 1. **No panics, bounded damage** — for each pinned seed the run
//!    completes, violation streaks stay within the harness bound, and
//!    the agent is back inside the SLA within the grace window after
//!    the last fault clears.
//! 2. **Bit-identical replay** — series *and* decision/guardrail trace
//!    are byte-equal across repeated in-process runs. (The CI chaos job
//!    additionally compares whole-process runs at `RAC_THREADS=1` vs
//!    `8`.)
//! 3. **Kill-and-resume through an outage** — a run stopped at a
//!    boundary inside the guaranteed blackout window (breaker open,
//!    agent degraded) and resumed from the snapshot finishes exactly
//!    like one that was never interrupted.

use std::sync::Arc;

use ckpt::wire::{Reader, Writer};
use ckpt::{Snapshot, SnapshotWriter};
use obs::trace::{self, TraceWriter};
use rac::{
    BoundaryAction, Experiment, IterationRecord, RacAgent, ScenarioProgress, ScenarioRunOutcome,
};
use rac_bench::chaos::{
    chaos_scenario, chaos_table, check_invariants, kill_points, last_fault_clear_iteration,
    run_chaos, run_chaos_killed, DEFAULT_ITERATIONS, PINNED_SEEDS, RECOVERY_GRACE,
};
use rac_bench::{paper_system_spec, standard_settings};
use scenario::Directive;

fn traced_run(seed: u64) -> (Vec<IterationRecord>, String) {
    let scn = chaos_scenario(seed, DEFAULT_ITERATIONS);
    let writer = Arc::new(TraceWriter::new());
    let mut series = Vec::new();
    trace::with_writer(&writer, || series = run_chaos(&scn));
    (series, writer.serialize())
}

#[test]
fn pinned_seeds_hold_the_chaos_invariants() {
    for seed in PINNED_SEEDS {
        let scn = chaos_scenario(seed, DEFAULT_ITERATIONS);
        let (series, trace) = traced_run(seed);
        let violations = check_invariants(&scn, &series);
        assert!(
            violations.is_empty(),
            "seed {seed} violated chaos invariants: {violations:?}"
        );
        assert_eq!(chaos_table(&series).len(), scn.iterations());
        // The guaranteed blackout must actually walk the breaker
        // through its lifecycle, visibly in the trace.
        for action in ["\"trip\"", "\"probe\"", "\"recover\""] {
            assert!(
                trace.contains(action),
                "seed {seed}: trace records no {action} guardrail event"
            );
        }
    }
}

#[test]
fn chaos_runs_replay_bit_identically() {
    for seed in PINNED_SEEDS {
        let (series_a, trace_a) = traced_run(seed);
        let (series_b, trace_b) = traced_run(seed);
        assert_eq!(series_a, series_b, "seed {seed}: series diverged on replay");
        assert_eq!(trace_a, trace_b, "seed {seed}: trace diverged on replay");
    }
}

#[test]
fn kill_and_resume_inside_the_outage_matches_uninterrupted() {
    let seed = PINNED_SEEDS[0];
    let scn = chaos_scenario(seed, DEFAULT_ITERATIONS);
    let exp = Experiment::for_scenario(paper_system_spec(), &scn);
    let full = run_chaos(&scn);

    // Stop at the first boundary after the blackout onset: the breaker
    // is tripping or already open, the agent degraded.
    let blackout_iter = scn
        .directives
        .iter()
        .find_map(|d| match d {
            Directive::Blackout { t, .. } => {
                Some((t.as_micros() / scn.interval.as_micros()) as usize)
            }
            _ => None,
        })
        .expect("chaos schedules always include a blackout");
    let stop_after = (blackout_iter + 2).min(scn.iterations() - 1);

    let mut snapshot_bytes = Vec::new();
    let outcome = exp
        .run_scenario_resumable(
            &scn,
            &mut RacAgent::new(standard_settings()),
            None,
            |p, tuner| {
                if p.iterations_done == stop_after {
                    let mut snap = SnapshotWriter::new();
                    tuner.save_state(&mut snap);
                    snapshot_bytes = snap.to_bytes();
                    Ok(BoundaryAction::Stop)
                } else {
                    Ok(BoundaryAction::Continue)
                }
            },
        )
        .expect("interrupted run");
    let ScenarioRunOutcome::Interrupted(progress) = outcome else {
        panic!("run should stop after {stop_after} iterations");
    };
    assert!(
        progress.channel.is_open(),
        "stop at iteration {stop_after} should land inside the outage window"
    );

    // Model the kill: progress goes through its wire form, the agent
    // through snapshot bytes, as if reloaded in a fresh process.
    let mut w = Writer::new();
    progress.encode(&mut w);
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes, "chaos");
    let restored_progress = ScenarioProgress::decode(&mut r).expect("progress decodes");
    r.finish().expect("progress fully consumed");
    let snap = Snapshot::from_bytes(&snapshot_bytes).expect("snapshot parses");
    let mut agent = RacAgent::restore(&snap).expect("agent restores");
    assert!(agent.is_degraded(), "restored agent must still be degraded");

    let resumed = exp
        .run_scenario_resumable(&scn, &mut agent, Some(restored_progress), |_, _| {
            Ok(BoundaryAction::Continue)
        })
        .expect("resumed run");
    assert_eq!(
        resumed,
        ScenarioRunOutcome::Complete(full),
        "resume through the open-breaker window diverged"
    );
}

#[test]
fn seeded_kill_arm_composes_with_measurement_faults() {
    // The `kill` fault arm: several seeded process deaths in one run —
    // agent state and progress cross their wire forms at each kill —
    // composed with the schedule's blackout/timeout faults. The series
    // must match an uninterrupted run exactly, and at least one kill
    // must land while the breaker is open (death *inside* the outage).
    for seed in PINNED_SEEDS {
        let scn = chaos_scenario(seed, DEFAULT_ITERATIONS);
        let points = kill_points(seed, &scn);
        assert!(
            points.len() >= 2,
            "seed {seed}: kill schedule too thin: {points:?}"
        );
        assert_eq!(
            points,
            kill_points(seed, &scn),
            "seed {seed}: kill schedule not deterministic"
        );
        let full = run_chaos(&scn);
        let (killed, in_outage) = run_chaos_killed(&scn, &points);
        assert!(
            in_outage >= 1,
            "seed {seed}: no kill landed inside the open-breaker window ({points:?})"
        );
        assert_eq!(
            killed, full,
            "seed {seed}: kill arm diverged from the uninterrupted run"
        );
    }
}

#[test]
fn recovery_window_lies_inside_the_run() {
    for seed in PINNED_SEEDS {
        let scn = chaos_scenario(seed, DEFAULT_ITERATIONS);
        let clear = last_fault_clear_iteration(&scn);
        assert!(
            clear + RECOVERY_GRACE <= scn.iterations(),
            "seed {seed}: recovery window [{clear}, {}) overruns the {}-iteration run",
            clear + RECOVERY_GRACE,
            scn.iterations()
        );
    }
}
